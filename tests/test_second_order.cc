// Tests for CAQL's second-order predicates (paper §5: "BAGOF, SETOF, AGG"):
// the SETOF distinct flag on CAQL queries and #agg aggregate rules in the
// knowledge base, under both inference strategies.

#include <gtest/gtest.h>

#include <set>

#include "braid/braid_system.h"
#include "caql/caql_query.h"
#include "cms/cms.h"
#include "logic/parser.h"

namespace braid {
namespace {

using rel::Value;

dbms::Database TestDb() {
  dbms::Database db;
  rel::Relation supplies("supplies",
                         rel::Schema::FromNames({"sid", "pid", "qty"}));
  supplies.AppendUnchecked({Value::Int(1), Value::Int(10), Value::Int(5)});
  supplies.AppendUnchecked({Value::Int(1), Value::Int(11), Value::Int(7)});
  supplies.AppendUnchecked({Value::Int(1), Value::Int(12), Value::Int(3)});
  supplies.AppendUnchecked({Value::Int(2), Value::Int(10), Value::Int(9)});
  supplies.AppendUnchecked({Value::Int(2), Value::Int(11), Value::Int(1)});
  supplies.AppendUnchecked({Value::Int(3), Value::Int(12), Value::Int(4)});
  BRAID_CHECK_OK(db.AddTable(std::move(supplies)));
  return db;
}

const char* kAggKb = R"(
#base supplies(sid, pid, qty).
#agg num_parts(S, N) = count P : supplies(S, P, Q).
#agg total_qty(S, T) = sum Q : supplies(S, P, Q).
#agg max_qty(M) = max Q : supplies(S, P, Q).
big_supplier(S) :- num_parts(S, N), N >= 3.
)";

std::set<std::string> Rows(const rel::Relation& r) {
  std::set<std::string> out;
  for (const rel::Tuple& t : r.tuples()) out.insert(rel::TupleToString(t));
  return out;
}

TEST(AggParsing, DirectiveParsesAndRendersRoundTrip) {
  logic::KnowledgeBase kb;
  Status s = logic::ParseProgram(kAggKb, &kb);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(kb.IsAggregate("num_parts"));
  const logic::AggregateRule* agg = kb.AggregateRuleFor("total_qty");
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->fn, logic::AggregateFn::kSum);
  EXPECT_EQ(agg->group_vars, (std::vector<std::string>{"S"}));
  EXPECT_EQ(agg->agg_var, "Q");
  EXPECT_EQ(agg->HeadArity(), 2u);

  logic::KnowledgeBase kb2;
  Status s2 = logic::ParseProgram(kb.ToString(), &kb2);
  ASSERT_TRUE(s2.ok()) << s2.ToString() << "\n" << kb.ToString();
  EXPECT_EQ(kb.ToString(), kb2.ToString());
}

TEST(AggParsing, Errors) {
  logic::KnowledgeBase kb;
  // Unknown function.
  EXPECT_EQ(logic::ParseProgram(
                "#base b(x).\n#agg f(N) = median X : b(X).", &kb)
                .code(),
            StatusCode::kParseError);
  // Group var not in body.
  logic::KnowledgeBase kb2;
  EXPECT_EQ(logic::ParseProgram(
                "#base b(x).\n#agg f(Z, N) = count X : b(X).", &kb2)
                .code(),
            StatusCode::kInvalidArgument);
  // Redefinition.
  logic::KnowledgeBase kb3;
  EXPECT_EQ(logic::ParseProgram(
                "#base b(x).\n#agg b(N) = count X : b(X).", &kb3)
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(AggInterpreted, CountSumMax) {
  logic::KnowledgeBase kb;
  ASSERT_TRUE(logic::ParseProgram(kAggKb, &kb).ok());
  BraidSystem braid(TestDb(), std::move(kb));

  auto counts = braid.Ask("num_parts(S, N)?");
  ASSERT_TRUE(counts.ok()) << counts.status().ToString();
  EXPECT_EQ(Rows(counts->solutions),
            (std::set<std::string>{"(1, 3)", "(2, 2)", "(3, 1)"}));

  auto totals = braid.Ask("total_qty(1, T)?");
  ASSERT_TRUE(totals.ok());
  ASSERT_EQ(totals->solutions.NumTuples(), 1u);
  EXPECT_EQ(totals->solutions.tuple(0)[0], Value::Double(15.0));

  auto max = braid.Ask("max_qty(M)?");
  ASSERT_TRUE(max.ok());
  ASSERT_EQ(max->solutions.NumTuples(), 1u);
  EXPECT_EQ(max->solutions.tuple(0)[0], Value::Int(9));
}

TEST(AggInterpreted, AggregateFeedsOrdinaryRule) {
  logic::KnowledgeBase kb;
  ASSERT_TRUE(logic::ParseProgram(kAggKb, &kb).ok());
  BraidSystem braid(TestDb(), std::move(kb));
  auto big = braid.Ask("big_supplier(S)?");
  ASSERT_TRUE(big.ok()) << big.status().ToString();
  EXPECT_EQ(Rows(big->solutions), (std::set<std::string>{"(1)"}));
}

TEST(AggCompiled, MatchesInterpreted) {
  logic::KnowledgeBase kb;
  ASSERT_TRUE(logic::ParseProgram(kAggKb, &kb).ok());
  BraidOptions options;
  options.ie.strategy = ie::StrategyKind::kCompiled;
  BraidSystem braid(TestDb(), std::move(kb), options);

  auto counts = braid.Ask("num_parts(S, N)?");
  ASSERT_TRUE(counts.ok()) << counts.status().ToString();
  EXPECT_EQ(Rows(counts->solutions),
            (std::set<std::string>{"(1, 3)", "(2, 2)", "(3, 1)"}));

  auto big = braid.Ask("big_supplier(S)?");
  ASSERT_TRUE(big.ok()) << big.status().ToString();
  EXPECT_EQ(Rows(big->solutions), (std::set<std::string>{"(1)"}));
}

TEST(AggCompiled, AggregateOverDerivedPredicate) {
  logic::KnowledgeBase kb;
  ASSERT_TRUE(logic::ParseProgram(R"(
#base supplies(sid, pid, qty).
big(S, P) :- supplies(S, P, Q), Q > 4.
#agg num_big(S, N) = count P : big(S, P).
)",
                                  &kb)
                  .ok());
  BraidOptions options;
  options.ie.strategy = ie::StrategyKind::kCompiled;
  BraidSystem braid(TestDb(), std::move(kb), options);
  auto out = braid.Ask("num_big(S, N)?");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Rows with qty > 4: (1,10,5), (1,11,7), (2,10,9) → counts 1:2, 2:1.
  EXPECT_EQ(Rows(out->solutions),
            (std::set<std::string>{"(1, 2)", "(2, 1)"}));

  // Interpreted agrees.
  logic::KnowledgeBase kb2;
  ASSERT_TRUE(logic::ParseProgram(R"(
#base supplies(sid, pid, qty).
big(S, P) :- supplies(S, P, Q), Q > 4.
#agg num_big(S, N) = count P : big(S, P).
)",
                                  &kb2)
                  .ok());
  BraidSystem braid2(TestDb(), std::move(kb2));
  auto out2 = braid2.Ask("num_big(S, N)?");
  ASSERT_TRUE(out2.ok()) << out2.status().ToString();
  EXPECT_EQ(Rows(out2->solutions), Rows(out->solutions));
}

TEST(Setof, DistinctFlagDedupesCmsAnswers) {
  dbms::Database db;
  rel::Relation b("b", rel::Schema::FromNames({"x", "y"}));
  b.AppendUnchecked({Value::Int(1), Value::Int(10)});
  b.AppendUnchecked({Value::Int(1), Value::Int(20)});
  b.AppendUnchecked({Value::Int(2), Value::Int(30)});
  BRAID_CHECK_OK(db.AddTable(std::move(b)));
  dbms::RemoteDbms remote(std::move(db));
  cms::Cms cms(&remote, cms::CmsConfig{});

  auto bagof = caql::ParseCaql("bag(X) :- b(X, Y)").value();
  auto a1 = cms.Query(bagof);
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(a1->relation->NumTuples(), 3u);  // bag: X=1 twice

  caql::CaqlQuery setof = bagof;
  setof.name = "set";
  setof.distinct = true;
  auto a2 = cms.Query(setof);
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->relation->NumTuples(), 2u);  // set: {1, 2}
}

TEST(Setof, DistinctChangesCanonicalKey) {
  auto bag = caql::ParseCaql("q(X) :- b(X, Y)").value();
  caql::CaqlQuery set = bag;
  set.distinct = true;
  EXPECT_NE(bag.CanonicalKey(), set.CanonicalKey());
}

TEST(Setof, LazyStreamAlsoDedupes) {
  dbms::Database db;
  rel::Relation b("b", rel::Schema::FromNames({"x", "y"}));
  b.AppendUnchecked({Value::Int(1), Value::Int(10)});
  b.AppendUnchecked({Value::Int(1), Value::Int(20)});
  BRAID_CHECK_OK(db.AddTable(std::move(b)));
  dbms::RemoteDbms remote(std::move(db));
  cms::Cms cms(&remote, cms::CmsConfig{});
  advice::AdviceSet advice;
  advice::ViewSpec v;
  v.id = "setview";
  v.head = {advice::AnnotatedVar{"X", advice::Binding::kProducer}};
  v.body = {logic::Atom("b", {logic::Term::Var("X"), logic::Term::Var("Y")})};
  advice.view_specs.push_back(v);
  cms.BeginSession(advice);
  // Prime so the lazy plan is fully local.
  BRAID_CHECK_OK(cms.Query(caql::ParseCaql("warm(X, Y) :- b(X, Y)").value()));
  caql::CaqlQuery q = caql::ParseCaql("setview(X) :- b(X, Y)").value();
  q.distinct = true;
  auto a = cms.Query(q);
  ASSERT_TRUE(a.ok());
  if (a->lazy) {
    rel::Relation out = stream::Drain(*a->stream);
    EXPECT_EQ(out.NumTuples(), 1u);
  } else {
    EXPECT_EQ(a->relation->NumTuples(), 1u);
  }
}

}  // namespace
}  // namespace braid
