// Cross-layer property tests: randomized differential checks that the
// architecture's optimizations never change answers.
//
//  P1. Every coupling mode (loose / exact-match / single-relation /
//      BrAID±advice) returns the same bag of answers for the same random
//      query session — caching, subsumption, generalization, prefetching,
//      indexing, and replacement are transparent.
//  P2. A full subsumption match derives exactly the answer that direct
//      evaluation produces, for random elements and queries.
//  P3. Interpreted and compiled strategies agree on random non-recursive
//      knowledge bases.
//  P4. The cache never exceeds its byte budget, under any query sequence.

#include <gtest/gtest.h>

#include <set>

#include "baselines/coupling_modes.h"
#include "braid/braid_system.h"
#include "cms/cms.h"
#include "cms/query_processor.h"
#include "cms/subsumption.h"
#include "common/rng.h"
#include "common/strings.h"

namespace braid {
namespace {

using caql::CaqlQuery;
using logic::Atom;
using logic::Term;
using rel::Tuple;
using rel::Value;

dbms::Database RandomDatabase(Rng* rng, size_t rows_per_table) {
  dbms::Database db;
  for (int t = 1; t <= 3; ++t) {
    rel::Relation table(StrCat("b", t), rel::Schema::FromNames({"a", "b"}));
    for (size_t i = 0; i < rows_per_table; ++i) {
      table.AppendUnchecked(
          {Value::Int(rng->Uniform(0, 7)), Value::Int(rng->Uniform(0, 7))});
    }
    BRAID_CHECK_OK(db.AddTable(std::move(table)));
  }
  return db;
}

/// A random safe conjunctive query over b1..b3 with 1-3 atoms, occasional
/// constants, repeated variables, and comparisons.
CaqlQuery RandomQuery(Rng* rng, int name_tag) {
  static const char* kVars[] = {"V0", "V1", "V2", "V3"};
  CaqlQuery q;
  q.name = StrCat("q", name_tag);
  const size_t num_atoms = static_cast<size_t>(rng->Uniform(1, 3));
  std::set<std::string> used_vars;
  for (size_t a = 0; a < num_atoms; ++a) {
    std::vector<Term> args;
    for (int pos = 0; pos < 2; ++pos) {
      if (rng->Bernoulli(0.25)) {
        args.push_back(Term::Int(rng->Uniform(0, 7)));
      } else {
        const char* v = kVars[rng->Uniform(0, 3)];
        args.push_back(Term::Var(v));
        used_vars.insert(v);
      }
    }
    q.body.push_back(Atom(StrCat("b", rng->Uniform(1, 3)), std::move(args)));
  }
  if (rng->Bernoulli(0.3) && !used_vars.empty()) {
    auto it = used_vars.begin();
    q.body.push_back(Atom("<", {Term::Var(*it),
                                Term::Int(rng->Uniform(0, 7))}));
  }
  for (const std::string& v : used_vars) {
    q.head_args.push_back(Term::Var(v));
  }
  if (q.head_args.empty()) {
    // Fully ground query: keep it as an existence check.
  }
  return q;
}

std::multiset<std::string> AnswerBag(cms::Cms* cms, const CaqlQuery& q) {
  auto a = cms->Query(q);
  EXPECT_TRUE(a.ok()) << q.ToString() << ": " << a.status().ToString();
  std::multiset<std::string> out;
  if (!a.ok()) return out;
  rel::Relation r = a->relation != nullptr ? *a->relation
                                           : stream::Drain(*a->stream);
  for (const Tuple& t : r.tuples()) out.insert(rel::TupleToString(t));
  return out;
}

class ModeEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModeEquivalence, AllCouplingModesAgreeOnRandomSessions) {
  const uint64_t seed = GetParam();
  using baselines::CouplingMode;
  const CouplingMode modes[] = {
      CouplingMode::kLooseCoupling, CouplingMode::kExactMatchCache,
      CouplingMode::kSingleRelationCache, CouplingMode::kBraidNoAdvice,
      CouplingMode::kBraid};

  // Generate one session of queries (shared across modes).
  Rng qrng(seed);
  std::vector<CaqlQuery> session;
  for (int i = 0; i < 12; ++i) {
    session.push_back(RandomQuery(&qrng, i));
    // Occasionally repeat an earlier query to exercise the exact path.
    if (i > 2 && qrng.Bernoulli(0.3)) {
      CaqlQuery repeat = session[static_cast<size_t>(qrng.Uniform(0, i - 1))];
      repeat.name = StrCat("r", i);
      session.push_back(std::move(repeat));
    }
  }

  std::vector<std::multiset<std::string>> reference;
  bool first = true;
  for (CouplingMode mode : modes) {
    Rng drng(seed + 1000);
    dbms::RemoteDbms remote(RandomDatabase(&drng, 40));
    cms::Cms cms(&remote, baselines::ConfigFor(mode, 8 << 20));
    std::vector<std::multiset<std::string>> answers;
    for (const CaqlQuery& q : session) {
      answers.push_back(AnswerBag(&cms, q));
    }
    if (first) {
      reference = std::move(answers);
      first = false;
    } else {
      for (size_t i = 0; i < session.size(); ++i) {
        EXPECT_EQ(answers[i], reference[i])
            << baselines::CouplingModeName(mode) << " query "
            << session[i].ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ModeEquivalence,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

class SubsumptionDerivation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SubsumptionDerivation, FullMatchDerivesDirectAnswer) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  dbms::Database db = RandomDatabase(&rng, 50);

  auto resolver = [&db](const Atom& atom)
      -> std::shared_ptr<const rel::Relation> {
    const rel::Relation* t = db.GetTable(atom.predicate);
    if (t == nullptr) return nullptr;
    return std::shared_ptr<const rel::Relation>(t, [](const rel::Relation*) {});
  };

  size_t checked = 0;
  for (int trial = 0; trial < 30; ++trial) {
    // Element: random all-variable generalization of a random query.
    CaqlQuery query = RandomQuery(&rng, trial);
    if (query.RelationAtoms().empty()) continue;
    // The element generalizes every constant to a fresh variable.
    CaqlQuery def;
    def.name = "e";
    int fresh = 0;
    for (const Atom& a : query.body) {
      if (a.IsComparison()) continue;  // keep definitions PSJ-pure
      Atom g = a;
      for (Term& t : g.args) {
        if (t.is_constant()) t = Term::Var(StrCat("G", fresh++));
      }
      def.body.push_back(g);
    }
    std::set<std::string> dv;
    logic::CollectVariables(def.body, &dv);
    for (const std::string& v : dv) def.head_args.push_back(Term::Var(v));
    CaqlQuery pure = query;
    pure.body = query.RelationAtoms();  // drop comparisons for this check

    auto match = cms::ComputeSubsumption(def, pure);
    if (!match.has_value() || !match->full) continue;
    ++checked;

    cms::LocalWork work;
    auto direct = cms::QueryProcessor::Evaluate(pure, resolver, &work);
    ASSERT_TRUE(direct.ok()) << pure.ToString();

    // Derive via the element: evaluate the definition, apply residuals,
    // project through var_to_column.
    auto ext = cms::QueryProcessor::Evaluate(def, resolver, &work);
    ASSERT_TRUE(ext.ok());
    rel::Relation derived("derived", ext->schema());
    for (const Tuple& t : ext->tuples()) {
      bool keep = true;
      for (const cms::ResidualSelection& s : match->selections) {
        const Value rhs = s.rhs_is_column ? t[s.rhs_column] : s.constant;
        if (!rel::EvalCompare(s.op, t[s.column], rhs)) {
          keep = false;
          break;
        }
      }
      if (keep) derived.AppendUnchecked(t);
    }
    std::vector<size_t> cols;
    for (const Term& h : pure.head_args) {
      ASSERT_TRUE(h.is_variable());
      auto it = match->var_to_column.find(h.var_name());
      ASSERT_NE(it, match->var_to_column.end()) << h.var_name();
      cols.push_back(it->second);
    }
    rel::Relation projected = rel::Project(derived, cols);

    std::multiset<std::string> want, got;
    for (const Tuple& t : direct->tuples()) {
      want.insert(rel::TupleToString(t));
    }
    for (const Tuple& t : projected.tuples()) {
      got.insert(rel::TupleToString(t));
    }
    EXPECT_EQ(got, want) << "def " << def.ToString() << " query "
                         << pure.ToString();
  }
  EXPECT_GT(checked, 0u) << "no full matches generated";
}

INSTANTIATE_TEST_SUITE_P(Sweep, SubsumptionDerivation,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

class StrategyEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrategyEquivalence, InterpretedMatchesCompiledOnRandomKbs) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  // Random non-recursive layered KB: layer-1 predicates over base atoms,
  // layer-2 over layer-1 and base.
  std::string program = R"(
#base b1(a, b).
#base b2(a, b).
#base b3(a, b).
)";
  static const char* kVars[] = {"X", "Y", "Z"};
  auto random_body_atom = [&rng](int max_layer) {
    std::string pred = max_layer >= 1 && rng.Bernoulli(0.4)
                           ? StrCat("p", rng.Uniform(1, 2))
                           : StrCat("b", rng.Uniform(1, 3));
    std::string a1 = rng.Bernoulli(0.2) ? std::to_string(rng.Uniform(0, 7))
                                        : kVars[rng.Uniform(0, 2)];
    std::string a2 = rng.Bernoulli(0.2) ? std::to_string(rng.Uniform(0, 7))
                                        : kVars[rng.Uniform(0, 2)];
    return pred + "(" + a1 + ", " + a2 + ")";
  };
  for (int p = 1; p <= 2; ++p) {
    const int num_rules = static_cast<int>(rng.Uniform(1, 2));
    for (int r = 0; r < num_rules; ++r) {
      // Head p<p>(X, Y), body mentions X and Y somewhere plus one more
      // atom for variety.
      program += StrCat("p", p, "(X, Y) :- b", rng.Uniform(1, 3),
                        "(X, Y), ", random_body_atom(0), ".\n");
    }
  }
  program += "top(X, Y) :- p1(X, Z), p2(Z, Y).\n";

  logic::KnowledgeBase kb1, kb2;
  ASSERT_TRUE(logic::ParseProgram(program, &kb1).ok()) << program;
  ASSERT_TRUE(logic::ParseProgram(program, &kb2).ok());

  Rng drng(seed + 5000);
  dbms::Database db = RandomDatabase(&drng, 30);
  Rng drng2(seed + 5000);
  dbms::Database db2 = RandomDatabase(&drng2, 30);

  BraidOptions interp_options;
  BraidSystem interp(std::move(db), std::move(kb1), interp_options);
  BraidOptions compiled_options;
  compiled_options.ie.strategy = ie::StrategyKind::kCompiled;
  BraidSystem compiled(std::move(db2), std::move(kb2), compiled_options);

  auto a = interp.Ask("top(X, Y)?");
  auto b = compiled.Ask("top(X, Y)?");
  ASSERT_TRUE(a.ok()) << a.status().ToString() << "\n" << program;
  ASSERT_TRUE(b.ok()) << b.status().ToString() << "\n" << program;

  std::set<std::string> sa, sb;  // distinct solutions agree
  for (const Tuple& t : a->solutions.tuples()) {
    sa.insert(rel::TupleToString(t));
  }
  for (const Tuple& t : b->solutions.tuples()) {
    sb.insert(rel::TupleToString(t));
  }
  EXPECT_EQ(sa, sb) << program;
}

INSTANTIATE_TEST_SUITE_P(Sweep, StrategyEquivalence,
                         ::testing::Values(7, 17, 27, 37, 47, 57, 67, 87));

class BudgetInvariant : public ::testing::TestWithParam<size_t> {};

TEST_P(BudgetInvariant, CacheNeverExceedsBudget) {
  const size_t budget = GetParam();
  Rng rng(99);
  dbms::RemoteDbms remote(RandomDatabase(&rng, 60));
  cms::CmsConfig config;
  config.cache_budget_bytes = budget;
  cms::Cms cms(&remote, config);
  for (int i = 0; i < 25; ++i) {
    CaqlQuery q = RandomQuery(&rng, i);
    auto a = cms.Query(q);
    ASSERT_TRUE(a.ok()) << q.ToString() << ": " << a.status().ToString();
    EXPECT_LE(cms.cache().model().TotalBytes(), budget)
        << "after query " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BudgetInvariant,
                         ::testing::Values(1024, 4096, 16384, 262144));

}  // namespace
}  // namespace braid
