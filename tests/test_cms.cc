// Tests for the CMS facade: outcomes, metrics, advice-driven behaviours
// (generalization, prefetching, indexing, lazy evaluation), and CMS-only
// operations (aggregation, transitive closure).

#include <gtest/gtest.h>

#include "advice/advice.h"
#include "cms/cms.h"
#include "workload/generators.h"

namespace braid::cms {
namespace {

using caql::CaqlQuery;
using caql::ParseCaql;
using rel::Value;

CaqlQuery Q(const std::string& text) {
  auto r = ParseCaql(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.value();
}

dbms::Database TestDb() {
  dbms::Database db;
  rel::Relation b1("b1", rel::Schema::FromNames({"a", "b"}));
  for (int i = 0; i < 20; ++i) {
    b1.AppendUnchecked({Value::Int(i % 5), Value::Int(i)});
  }
  rel::Relation b2("b2", rel::Schema::FromNames({"a", "b"}));
  for (int i = 0; i < 20; ++i) {
    b2.AppendUnchecked({Value::Int(i), Value::Int(i * 10)});
  }
  BRAID_CHECK_OK(db.AddTable(std::move(b1)));
  BRAID_CHECK_OK(db.AddTable(std::move(b2)));
  return db;
}

advice::ViewSpec ViewD(const std::string& id, advice::Binding x_binding,
                       advice::Binding y_binding) {
  advice::ViewSpec v;
  v.id = id;
  v.head = {advice::AnnotatedVar{"X", x_binding},
            advice::AnnotatedVar{"Y", y_binding}};
  v.body = {logic::Atom("b1", {logic::Term::Var("X"),
                               logic::Term::Var("Y")})};
  return v;
}

class CmsTest : public ::testing::Test {
 protected:
  CmsTest() : remote_(TestDb()), cms_(&remote_, CmsConfig{}) {}

  rel::Relation Answer(const std::string& text) {
    auto a = cms_.Query(Q(text));
    EXPECT_TRUE(a.ok()) << text << ": " << a.status().ToString();
    if (!a.ok()) return rel::Relation();
    return a->relation != nullptr ? *a->relation
                                  : stream::Drain(*a->stream);
  }

  dbms::RemoteDbms remote_;
  Cms cms_;
};

TEST_F(CmsTest, FirstQueryIsRemoteSecondIsExact) {
  auto a1 = cms_.Query(Q("q(X, Y) :- b1(X, Y)"));
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(a1->outcome, CacheOutcome::kRemote);
  auto a2 = cms_.Query(Q("q(P, R) :- b1(P, R)"));  // renamed: same canonical
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->outcome, CacheOutcome::kExact);
  EXPECT_EQ(cms_.metrics().exact_hits, 1u);
  EXPECT_EQ(a1->relation->NumTuples(), a2->relation->NumTuples());
}

TEST_F(CmsTest, SubsumptionAnswersNarrowerQueryLocally) {
  ASSERT_TRUE(cms_.Query(Q("all(X, Y) :- b1(X, Y)")).ok());
  const size_t remote_before = remote_.stats().queries;
  auto a = cms_.Query(Q("narrow(Y) :- b1(2, Y)"));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->outcome, CacheOutcome::kFullLocal);
  EXPECT_EQ(remote_.stats().queries, remote_before);
  EXPECT_EQ(a->relation->NumTuples(), 4u);  // i%5==2: 2,7,12,17
}

TEST_F(CmsTest, PartialHitJoinsCacheAndRemote) {
  ASSERT_TRUE(cms_.Query(Q("all(X, Y) :- b1(X, Y)")).ok());
  auto a = cms_.Query(Q("join(X, Z) :- b1(X, Y) & b2(Y, Z)"));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->outcome, CacheOutcome::kPartial);
  EXPECT_EQ(a->relation->NumTuples(), 20u);
  EXPECT_EQ(cms_.metrics().partial_hits, 1u);
}

TEST_F(CmsTest, AnswersAreCorrectRegardlessOfPath) {
  // Remote answer vs cached-subsumption answer must coincide.
  auto direct = Answer("q1(Y) :- b1(3, Y)");
  ASSERT_TRUE(cms_.Query(Q("all(X, Y) :- b1(X, Y)")).ok());
  auto via_cache = Answer("q2(Y) :- b1(3, Y)");
  ASSERT_EQ(direct.NumTuples(), via_cache.NumTuples());
}

TEST_F(CmsTest, MetricsAccumulateAndReset) {
  ASSERT_TRUE(cms_.Query(Q("q(X, Y) :- b1(X, Y)")).ok());
  EXPECT_EQ(cms_.metrics().ie_queries, 1u);
  EXPECT_GT(cms_.metrics().response_ms, 0);
  cms_.ResetMetrics();
  EXPECT_EQ(cms_.metrics().ie_queries, 0u);
}

TEST_F(CmsTest, CachingDisabledAlwaysRemote) {
  CmsConfig config;
  config.enable_caching = false;
  Cms loose(&remote_, config);
  for (int i = 0; i < 3; ++i) {
    auto a = loose.Query(Q("q(X, Y) :- b1(X, Y)"));
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a->outcome, CacheOutcome::kRemote);
  }
  EXPECT_EQ(loose.metrics().remote_only, 3u);
  EXPECT_EQ(loose.metrics().exact_hits, 0u);
}

TEST_F(CmsTest, SingleRelationPolicyOnlyCachesBaseExtensions) {
  CmsConfig config;
  config.single_relation_only = true;
  config.enable_advice = false;
  Cms ceri(&remote_, config);
  ASSERT_TRUE(ceri.Query(Q("all(X, Y) :- b1(X, Y)")).ok());
  EXPECT_EQ(ceri.cache().model().size(), 1u);
  // A join result is not admitted by the CERI86 policy.
  ASSERT_TRUE(ceri.Query(Q("j(X, Z) :- b1(X, Y) & b2(Y, Z)")).ok());
  EXPECT_EQ(ceri.cache().model().size(), 1u);
  // A selection result is not admitted either.
  ASSERT_TRUE(ceri.Query(Q("sel(Y) :- b1(2, Y)")).ok());
  EXPECT_EQ(ceri.cache().model().size(), 1u);
}

TEST_F(CmsTest, LazyAnswerForAllProducerView) {
  advice::AdviceSet advice;
  advice.view_specs.push_back(
      ViewD("d1", advice::Binding::kProducer, advice::Binding::kProducer));
  cms_.BeginSession(advice);
  // Populate the cache with b1 so the lazy plan is fully local.
  ASSERT_TRUE(cms_.Query(Q("warm(X, Y) :- b1(X, Y)")).ok());
  auto a = cms_.Query(Q("d1(X, Y) :- b1(X, Y)"));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->outcome, CacheOutcome::kLazy);
  EXPECT_TRUE(a->lazy);
  EXPECT_EQ(a->relation, nullptr);
  // Pulling two tuples must not scan everything.
  ASSERT_TRUE(a->stream->Next().has_value());
  ASSERT_TRUE(a->stream->Next().has_value());
  rel::Relation rest = stream::Drain(*a->stream);
  EXPECT_EQ(rest.NumTuples() + 2, 20u);
  EXPECT_EQ(cms_.metrics().lazy_answers, 1u);
}

TEST_F(CmsTest, ConsumerViewIsEagerWithIndex) {
  advice::AdviceSet advice;
  advice.view_specs.push_back(
      ViewD("d2", advice::Binding::kProducer, advice::Binding::kConsumer));
  cms_.BeginSession(advice);
  auto a = cms_.Query(Q("d2(X, 7) :- b1(X, 7)"));
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(a->lazy);
}

TEST_F(CmsTest, GeneralizationCachesGeneralForm) {
  // Path expression predicting d2 repeats → instance queries should be
  // generalized (§5.3.1).
  advice::AdviceSet advice;
  advice.view_specs.push_back(
      ViewD("d2", advice::Binding::kProducer, advice::Binding::kConsumer));
  advice.path_expression = advice::PathExpr::Sequence(
      {advice::PathExpr::Pattern(
          "d2", {advice::AnnotatedVar{"X", advice::Binding::kProducer},
                 advice::AnnotatedVar{"Y", advice::Binding::kConsumer}})},
      advice::RepBound::Fixed(0), advice::RepBound::Cardinality("Y"));
  cms_.BeginSession(advice);

  auto a1 = cms_.Query(Q("d2(X, 7) :- b1(X, 7)"));
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(cms_.metrics().generalizations, 1u);
  const size_t remote_after_first = remote_.stats().queries;

  // Subsequent instances with different constants answer locally.
  auto a2 = cms_.Query(Q("d2(X, 8) :- b1(X, 8)"));
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->outcome, CacheOutcome::kFullLocal);
  EXPECT_EQ(remote_.stats().queries, remote_after_first);
}

TEST_F(CmsTest, PrefetchExecutesPredictedNextView) {
  advice::AdviceSet advice;
  advice.view_specs.push_back(
      ViewD("d1", advice::Binding::kProducer, advice::Binding::kProducer));
  advice::ViewSpec d2;
  d2.id = "d2";
  d2.head = {advice::AnnotatedVar{"A", advice::Binding::kProducer},
             advice::AnnotatedVar{"B", advice::Binding::kProducer}};
  d2.body = {logic::Atom("b2", {logic::Term::Var("A"),
                                logic::Term::Var("B")})};
  advice.view_specs.push_back(d2);
  advice.path_expression = advice::PathExpr::Sequence(
      {advice::PathExpr::Pattern("d1", {}),
       advice::PathExpr::Pattern("d2", {})},
      advice::RepBound::Fixed(1), advice::RepBound::Fixed(1));
  cms_.BeginSession(advice);

  auto a1 = cms_.Query(Q("d1(X, Y) :- b1(X, Y)"));
  ASSERT_TRUE(a1.ok());
  // d2 was predicted next → prefetched in the background; drain before
  // reading the counters.
  cms_.DrainPrefetches();
  EXPECT_EQ(cms_.metrics().prefetches, 1u);
  EXPECT_GT(cms_.metrics().prefetch_ms, 0);

  const size_t remote_before = remote_.stats().queries;
  auto a2 = cms_.Query(Q("d2(A, B) :- b2(A, B)"));
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(remote_.stats().queries, remote_before);  // served from cache
}

TEST_F(CmsTest, AggregateOverQueryResult) {
  auto agg = cms_.Aggregate(Q("q(X, Y) :- b1(X, Y)"), {"X"},
                            rel::AggFn::kCount, "Y");
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  EXPECT_EQ(agg->NumTuples(), 5u);  // 5 distinct X groups
  for (const rel::Tuple& t : agg->tuples()) {
    EXPECT_EQ(t[1], Value::Int(4));  // 4 rows per group
  }
}

TEST_F(CmsTest, TransitiveClosureComputedAndCached) {
  dbms::Database db;
  rel::Relation edge("edge", rel::Schema::FromNames({"s", "d"}));
  edge.AppendUnchecked({Value::Int(1), Value::Int(2)});
  edge.AppendUnchecked({Value::Int(2), Value::Int(3)});
  BRAID_CHECK_OK(db.AddTable(std::move(edge)));
  dbms::RemoteDbms remote(std::move(db));
  Cms cms(&remote, CmsConfig{});

  auto tc1 = cms.TransitiveClosure("edge");
  ASSERT_TRUE(tc1.ok()) << tc1.status().ToString();
  EXPECT_EQ(tc1->NumTuples(), 3u);  // 12 23 13
  const size_t remote_q = remote.stats().queries;
  auto tc2 = cms.TransitiveClosure("edge");
  ASSERT_TRUE(tc2.ok());
  EXPECT_EQ(tc2->NumTuples(), 3u);
  EXPECT_EQ(remote.stats().queries, remote_q);  // cached
}

TEST_F(CmsTest, InvalidQueryRejected) {
  CaqlQuery bad;
  bad.name = "bad";
  bad.head_args = {logic::Term::Var("X")};
  bad.body = {logic::Atom("b1", {logic::Term::Var("Y"),
                                 logic::Term::Var("Z")})};
  EXPECT_FALSE(cms_.Query(bad).ok());
}

TEST_F(CmsTest, UnknownRelationErrorsCleanly) {
  auto a = cms_.Query(Q("q(X) :- nosuch(X)"));
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kNotFound);
}

TEST_F(CmsTest, CacheEvictionUnderTinyBudget) {
  CmsConfig config;
  config.cache_budget_bytes = 4096;
  Cms tiny(&remote_, config);
  for (int c = 0; c < 6; ++c) {
    auto a = tiny.Query(Q("q" + std::to_string(c) + "(Y) :- b1(" +
                          std::to_string(c % 5) + ", Y)"));
    ASSERT_TRUE(a.ok());
  }
  EXPECT_LE(tiny.cache().model().TotalBytes(), 4096u);
}

}  // namespace
}  // namespace braid::cms

namespace braid::cms {
namespace {

TEST(SimplestAdvice, BaseRelationListProtectsSessionRelevantElements) {
  // §4.2: "even this simplest form of advice will provide the CMS with
  // significant knowledge" — here, replacement protection for elements
  // over the session's relevant base relations.
  dbms::Database db;
  for (const char* name : {"rel_a", "rel_b"}) {
    rel::Relation t(name, rel::Schema::FromNames({"x", "y"}));
    for (int i = 0; i < 40; ++i) {
      t.AppendUnchecked({rel::Value::Int(i), rel::Value::Int(i)});
    }
    BRAID_CHECK_OK(db.AddTable(std::move(t)));
  }
  dbms::RemoteDbms remote(std::move(db));

  // Budget for roughly one of the two extensions.
  CmsConfig config;
  config.cache_budget_bytes = 4000;
  Cms cms(&remote, config);

  advice::AdviceSet advice;
  advice.base_relations = {"rel_a"};  // only rel_a is session-relevant
  cms.BeginSession(advice);

  auto qa = caql::ParseCaql("qa(X, Y) :- rel_a(X, Y)").value();
  auto qb = caql::ParseCaql("qb(X, Y) :- rel_b(X, Y)").value();
  ASSERT_TRUE(cms.Query(qa).ok());
  ASSERT_TRUE(cms.Query(qb).ok());  // pressure: must evict something

  // The session-relevant element survived; the irrelevant fetch did not
  // displace it.
  bool has_a = false;
  for (const auto& [id, e] : cms.cache().model().elements()) {
    for (const logic::Atom& atom : e->definition().RelationAtoms()) {
      if (atom.predicate == "rel_a") has_a = true;
    }
  }
  EXPECT_TRUE(has_a);

  // Re-asking the relevant query is a cache hit.
  const size_t remote_before = remote.stats().queries;
  auto again = cms.Query(caql::ParseCaql("qa2(X, Y) :- rel_a(X, Y)").value());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(remote.stats().queries, remote_before);
}

}  // namespace
}  // namespace braid::cms
