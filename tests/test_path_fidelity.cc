// Path-expression fidelity: the path expression the IE transmits is an
// abstraction of the CAQL query sequence it will emit (paper §4.2.2). The
// CMS's tracker counts queries that arrive outside its predictions, so a
// faithful pre-analysis shows zero mispredictions across whole sessions.

#include <gtest/gtest.h>

#include "braid/braid_system.h"
#include "common/strings.h"
#include "workload/generators.h"

namespace braid {
namespace {

logic::KnowledgeBase Kb(const std::string& text) {
  logic::KnowledgeBase kb;
  Status s = logic::ParseProgram(text, &kb);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return kb;
}

dbms::Database ExampleDb() {
  dbms::Database db;
  rel::Relation b1("b1", rel::Schema::FromNames({"a", "b"}));
  b1.AppendUnchecked({rel::Value::String("c1"), rel::Value::Int(1)});
  b1.AppendUnchecked({rel::Value::String("c1"), rel::Value::Int(2)});
  b1.AppendUnchecked({rel::Value::Int(8), rel::Value::Int(4)});
  rel::Relation b2("b2", rel::Schema::FromNames({"a", "b"}));
  b2.AppendUnchecked({rel::Value::Int(10), rel::Value::Int(20)});
  b2.AppendUnchecked({rel::Value::Int(11), rel::Value::Int(21)});
  rel::Relation b3("b3", rel::Schema::FromNames({"a", "b", "c"}));
  b3.AppendUnchecked({rel::Value::Int(20), rel::Value::String("c2"),
                      rel::Value::Int(1)});
  b3.AppendUnchecked({rel::Value::Int(8), rel::Value::String("c3"),
                      rel::Value::Int(8)});
  BRAID_CHECK_OK(db.AddTable(std::move(b1)));
  BRAID_CHECK_OK(db.AddTable(std::move(b2)));
  BRAID_CHECK_OK(db.AddTable(std::move(b3)));
  return db;
}

size_t RunAndCountMispredictions(dbms::Database db, logic::KnowledgeBase kb,
                                 const std::string& query) {
  BraidSystem braid(std::move(db), std::move(kb));
  auto out = braid.Ask(query);
  EXPECT_TRUE(out.ok()) << query << ": " << out.status().ToString();
  if (!out.ok()) return SIZE_MAX;
  return braid.cms().advice_manager().tracker_mispredictions();
}

TEST(PathFidelity, PaperExampleOneSessionFullyPredicted) {
  logic::KnowledgeBase kb = Kb(R"(
#base b1(a, b).
#base b2(a, b).
#base b3(a, b, c).
k1(X, Y) :- b1(c1, Y), k2(X, Y).
k2(X, Y) :- b2(X, Z), b3(Z, c2, Y).
k2(X, Y) :- b3(X, c3, Z), b1(Z, Y).
)");
  EXPECT_EQ(RunAndCountMispredictions(ExampleDb(), std::move(kb),
                                      "k1(X, Y)?"),
            0u);
}

TEST(PathFidelity, GuardedAlternativesFullyPredicted) {
  logic::KnowledgeBase kb = Kb(R"(
#base b1(a, b).
#base b2(a, b).
#base b3(a, b, c).
k3(X) :- b2(X, W).
k4(X) :- b3(X, c3, W).
k1(X, Y) :- b1(c1, Y), k2(X, Y).
k2(X, Y) :- k3(X), b2(X, Z), b3(Z, c2, Y).
k2(X, Y) :- k4(X), b3(X, c3, Z), b1(Z, Y).
)");
  EXPECT_EQ(RunAndCountMispredictions(ExampleDb(), std::move(kb),
                                      "k1(X, Y)?"),
            0u);
}

TEST(PathFidelity, GenealogySessionsFullyPredicted) {
  workload::GenealogyParams params;
  params.people = 150;
  for (const char* query : {"grandparent(120, Y)?", "sibling(120, Y)?",
                            "greatgrand(140, Y)?", "elder(X, A)?"}) {
    logic::KnowledgeBase kb = Kb(workload::GenealogyKb());
    EXPECT_EQ(RunAndCountMispredictions(workload::MakeGenealogyDatabase(params),
                                        std::move(kb), query),
              0u)
        << query;
  }
}

TEST(PathFidelity, RecursiveSessionFullyPredicted) {
  // Recursion is abstracted by an unbounded repetition wrap; the dynamic
  // re-entry path must stay inside that abstraction.
  workload::GraphParams params;
  params.nodes = 30;
  params.edges = 60;
  logic::KnowledgeBase kb = Kb(workload::GraphKb());
  EXPECT_EQ(RunAndCountMispredictions(workload::MakeGraphDatabase(params),
                                      std::move(kb), "reachable(0, Y)?"),
            0u);
}

TEST(PathFidelity, SupplierSessionsFullyPredicted) {
  workload::SupplierParams params;
  params.suppliers = 20;
  params.parts = 40;
  params.supplies = 120;
  for (const char* query :
       {"heavy_supplier(S, P)?", "second_source(5, S1, S2)?",
        "single_sourced(P)?"}) {
    logic::KnowledgeBase kb = Kb(workload::SupplierKb());
    size_t wrong = RunAndCountMispredictions(
        workload::MakeSupplierDatabase(params), std::move(kb), query);
    EXPECT_EQ(wrong, 0u) << query;
  }
}

TEST(PathFidelity, BomSessionsFullyPredicted) {
  workload::BomParams params;
  params.items = 40;
  params.leaves = 25;
  for (const char* query :
       {"contains(39, P)?", "leaf(P)?", "complex_assembly(A)?"}) {
    logic::KnowledgeBase kb = Kb(workload::BomKb());
    size_t wrong = RunAndCountMispredictions(workload::MakeBomDatabase(params),
                                             std::move(kb), query);
    EXPECT_EQ(wrong, 0u) << query;
  }
}

}  // namespace
}  // namespace braid
