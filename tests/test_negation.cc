// Tests for CAQL's NOT (paper §5: "logical connectives (AND, OR, NOT)"):
// safe negation in CAQL queries evaluated by anti-join, negation-as-failure
// in the interpreted strategy, and stratified evaluation in the compiled
// strategy.

#include <gtest/gtest.h>

#include <set>

#include "braid/braid_system.h"
#include "caql/caql_query.h"
#include "cms/cms.h"
#include "cms/query_processor.h"
#include "logic/parser.h"

namespace braid {
namespace {

using rel::Value;

dbms::Database TestDb() {
  dbms::Database db;
  rel::Relation node("node", rel::Schema::FromNames({"id"}));
  for (int i = 0; i < 6; ++i) node.AppendUnchecked({Value::Int(i)});
  rel::Relation edge("edge", rel::Schema::FromNames({"src", "dst"}));
  edge.AppendUnchecked({Value::Int(0), Value::Int(1)});
  edge.AppendUnchecked({Value::Int(1), Value::Int(2)});
  edge.AppendUnchecked({Value::Int(3), Value::Int(4)});
  BRAID_CHECK_OK(db.AddTable(std::move(node)));
  BRAID_CHECK_OK(db.AddTable(std::move(edge)));
  return db;
}

std::set<std::string> Rows(const rel::Relation& r) {
  std::set<std::string> out;
  for (const rel::Tuple& t : r.tuples()) out.insert(rel::TupleToString(t));
  return out;
}

TEST(NegationParsing, NotPrefixSetsFlag) {
  auto q = caql::ParseCaql("sink(X) :- node(X) & not edge(X, Y)");
  // Unsafe: Y occurs only in the negated literal.
  EXPECT_FALSE(q.ok());

  auto q2 = caql::ParseCaql("noedge(X, Y) :- node(X) & node(Y) & not edge(X, Y)");
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(q2->NegatedAtoms().size(), 1u);
  EXPECT_EQ(q2->RelationAtoms().size(), 2u);
  EXPECT_TRUE(q2->NegatedAtoms()[0].negated);
  EXPECT_EQ(q2->ToString(),
            "noedge(X, Y) :- node(X) & node(Y) & not edge(X, Y)");
}

TEST(NegationParsing, PredicateNamedNotStillParses) {
  logic::KnowledgeBase kb;
  Status s = logic::ParseProgram("#base not(x).\np(X) :- not(X).", &kb);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_FALSE(kb.rules()[0].body[0].negated);
}

TEST(NegationParsing, CanonicalKeyDistinguishesPolarity) {
  auto pos = caql::ParseCaql("q(X, Y) :- node(X) & node(Y) & edge(X, Y)");
  auto neg = caql::ParseCaql("q(X, Y) :- node(X) & node(Y) & not edge(X, Y)");
  ASSERT_TRUE(pos.ok());
  ASSERT_TRUE(neg.ok());
  EXPECT_NE(pos->CanonicalKey(), neg->CanonicalKey());
}

TEST(NegationQueryProcessor, AntiJoinFiltersMatches) {
  auto node = std::make_shared<rel::Relation>("node",
                                              rel::Schema::FromNames({"id"}));
  for (int i = 0; i < 4; ++i) node->AppendUnchecked({Value::Int(i)});
  auto edge = std::make_shared<rel::Relation>(
      "edge", rel::Schema::FromNames({"s", "d"}));
  edge->AppendUnchecked({Value::Int(0), Value::Int(1)});
  edge->AppendUnchecked({Value::Int(2), Value::Int(3)});

  cms::QueryProcessor::AtomResolver resolver =
      [&](const logic::Atom& a) -> std::shared_ptr<const rel::Relation> {
    if (a.predicate == "node") return node;
    if (a.predicate == "edge") return edge;
    return nullptr;
  };
  // Sources: nodes with no outgoing edge.
  auto q = caql::ParseCaql("sink(X) :- node(X) & not edge(X, X2)");
  // Unsafe (X2 unbound) — use the two-var safe form instead.
  EXPECT_FALSE(q.ok());
  auto q2 = caql::ParseCaql(
      "noedge(X, Y) :- node(X) & node(Y) & not edge(X, Y)");
  ASSERT_TRUE(q2.ok());
  cms::LocalWork work;
  auto out = cms::QueryProcessor::Evaluate(q2.value(), resolver, &work);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // 4x4 pairs minus the two edges.
  EXPECT_EQ(out->NumTuples(), 14u);
}

TEST(NegationQueryProcessor, AntiJoinWithConstants) {
  auto edge = std::make_shared<rel::Relation>(
      "edge", rel::Schema::FromNames({"s", "d"}));
  edge->AppendUnchecked({Value::Int(0), Value::Int(1)});
  auto node = std::make_shared<rel::Relation>("node",
                                              rel::Schema::FromNames({"id"}));
  node->AppendUnchecked({Value::Int(0)});
  node->AppendUnchecked({Value::Int(5)});
  cms::QueryProcessor::AtomResolver resolver =
      [&](const logic::Atom& a) -> std::shared_ptr<const rel::Relation> {
    if (a.predicate == "node") return node;
    if (a.predicate == "edge") return edge;
    return nullptr;
  };
  // Nodes with no edge to 1.
  auto q = caql::ParseCaql("q(X) :- node(X) & not edge(X, 1)");
  ASSERT_TRUE(q.ok());
  cms::LocalWork work;
  auto out = cms::QueryProcessor::Evaluate(q.value(), resolver, &work);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(Rows(*out), (std::set<std::string>{"(5)"}));
}

TEST(NegationCms, PlansAntiSourceRemotely) {
  dbms::RemoteDbms remote(TestDb());
  cms::Cms cms(&remote, cms::CmsConfig{});
  auto q = caql::ParseCaql(
      "noedge(X, Y) :- node(X) & node(Y) & not edge(X, Y)");
  ASSERT_TRUE(q.ok());
  auto a = cms.Query(q.value());
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->relation->NumTuples(), 36u - 3u);
}

TEST(NegationCms, AntiSourceUsesCacheWhenAvailable) {
  dbms::RemoteDbms remote(TestDb());
  cms::Cms cms(&remote, cms::CmsConfig{});
  // Prime both relations.
  BRAID_CHECK_OK(cms.Query(caql::ParseCaql("alln(X) :- node(X)").value()));
  BRAID_CHECK_OK(cms.Query(caql::ParseCaql("alle(X, Y) :- edge(X, Y)").value()));
  const size_t remote_before = remote.stats().queries;
  auto a = cms.Query(
      caql::ParseCaql("noedge(X, Y) :- node(X) & node(Y) & not edge(X, Y)")
          .value());
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(remote.stats().queries, remote_before);  // fully local
  EXPECT_EQ(a->relation->NumTuples(), 33u);
  EXPECT_EQ(a->outcome, cms::CacheOutcome::kFullLocal);
}

const char* kNegKb = R"(
#base node(id).
#base edge(src, dst).
linked(X) :- edge(X, Y).
linked(X) :- edge(Y, X).
isolated(X) :- node(X), not linked(X).
sink(X) :- node(X), linked(X), not source(X).
source(X) :- edge(X, Y).
)";

TEST(NegationIe, InterpretedNegationAsFailure) {
  logic::KnowledgeBase kb;
  ASSERT_TRUE(logic::ParseProgram(kNegKb, &kb).ok());
  BraidSystem braid(TestDb(), std::move(kb));
  auto isolated = braid.Ask("isolated(X)?");
  ASSERT_TRUE(isolated.ok()) << isolated.status().ToString();
  // Nodes 0..5; edges touch 0,1,2,3,4 → isolated = {5}.
  EXPECT_EQ(Rows(isolated->solutions), (std::set<std::string>{"(5)"}));

  auto sinks = braid.Ask("sink(X)?");
  ASSERT_TRUE(sinks.ok()) << sinks.status().ToString();
  // linked minus sources {0,1,3} → {2, 4}.
  EXPECT_EQ(Rows(sinks->solutions), (std::set<std::string>{"(2)", "(4)"}));
}

TEST(NegationIe, CompiledStratifiedMatchesInterpreted) {
  logic::KnowledgeBase kb;
  ASSERT_TRUE(logic::ParseProgram(kNegKb, &kb).ok());
  BraidOptions options;
  options.ie.strategy = ie::StrategyKind::kCompiled;
  BraidSystem braid(TestDb(), std::move(kb), options);
  auto isolated = braid.Ask("isolated(X)?");
  ASSERT_TRUE(isolated.ok()) << isolated.status().ToString();
  EXPECT_EQ(Rows(isolated->solutions), (std::set<std::string>{"(5)"}));
  auto sinks = braid.Ask("sink(X)?");
  ASSERT_TRUE(sinks.ok());
  EXPECT_EQ(Rows(sinks->solutions), (std::set<std::string>{"(2)", "(4)"}));
}

TEST(NegationIe, UnstratifiableKbRejectedByCompiled) {
  logic::KnowledgeBase kb;
  ASSERT_TRUE(logic::ParseProgram(R"(
#base node(id).
p(X) :- node(X), not q(X).
q(X) :- node(X), not p(X).
)",
                                  &kb)
                  .ok());
  BraidOptions options;
  options.ie.strategy = ie::StrategyKind::kCompiled;
  BraidSystem braid(TestDb(), std::move(kb), options);
  auto out = braid.Ask("p(X)?");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(NegationIe, NegatedBaseAtomInRule) {
  logic::KnowledgeBase kb;
  ASSERT_TRUE(logic::ParseProgram(R"(
#base node(id).
#base edge(src, dst).
nonadjacent(X, Y) :- node(X), node(Y), not edge(X, Y), X != Y.
)",
                                  &kb)
                  .ok());
  BraidSystem braid(TestDb(), std::move(kb));
  auto out = braid.Ask("nonadjacent(0, Y)?");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Y in 1..5 minus edge(0,1) → {2,3,4,5}.
  EXPECT_EQ(Rows(out->solutions),
            (std::set<std::string>{"(2)", "(3)", "(4)", "(5)"}));
}

TEST(NegationSubsumption, NegatedDefinitionOnlyReusedExactly) {
  auto def = caql::ParseCaql(
      "d(X, Y) :- node(X) & node(Y) & not edge(X, Y)");
  auto same = caql::ParseCaql(
      "d(A, B) :- node(A) & node(B) & not edge(A, B)");
  auto narrower = caql::ParseCaql("q(A, B) :- node(A) & node(B)");
  ASSERT_TRUE(def.ok());
  ASSERT_TRUE(same.ok());
  ASSERT_TRUE(narrower.ok());
  EXPECT_TRUE(cms::ComputeSubsumption(def.value(), same.value()).has_value());
  // A negated definition must not answer a query without the negation.
  EXPECT_FALSE(
      cms::ComputeSubsumption(def.value(), narrower.value()).has_value());
}

}  // namespace
}  // namespace braid
