// Unit tests for the RDI (CAQL → SQL translation) and the Query
// Planner/Optimizer (steps 2-3 of paper §5.3).

#include <gtest/gtest.h>

#include "caql/caql_query.h"
#include "cms/planner.h"
#include "cms/remote_interface.h"

namespace braid::cms {
namespace {

using caql::CaqlQuery;
using caql::ParseCaql;
using rel::Tuple;
using rel::Value;

CaqlQuery Q(const std::string& text) {
  auto r = ParseCaql(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.value();
}

dbms::Database TestDb() {
  dbms::Database db;
  rel::Relation b1("b1", rel::Schema::FromNames({"a", "b"}));
  b1.AppendUnchecked({Value::Int(1), Value::Int(10)});
  b1.AppendUnchecked({Value::Int(2), Value::Int(20)});
  rel::Relation b2("b2", rel::Schema::FromNames({"a", "b"}));
  b2.AppendUnchecked({Value::Int(10), Value::Int(5)});
  b2.AppendUnchecked({Value::Int(20), Value::Int(6)});
  BRAID_CHECK_OK(db.AddTable(std::move(b1)));
  BRAID_CHECK_OK(db.AddTable(std::move(b2)));
  return db;
}

class RdiTest : public ::testing::Test {
 protected:
  RdiTest() : remote_(TestDb()), rdi_(&remote_) {}
  dbms::RemoteDbms remote_;
  RemoteDbmsInterface rdi_;
};

TEST_F(RdiTest, TranslatesSelectionAndJoin) {
  auto sql = rdi_.Translate(Q("q(X, Z) :- b1(X, Y) & b2(Y, Z)"), {"X", "Z"});
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_EQ(sql->from, (std::vector<std::string>{"b1", "b2"}));
  ASSERT_EQ(sql->where.size(), 1u);  // shared Y
  EXPECT_TRUE(sql->where[0].IsEquiJoin());
  EXPECT_EQ(sql->select.size(), 2u);
}

TEST_F(RdiTest, ConstantsBecomeConditions) {
  auto sql = rdi_.Translate(Q("q(Y) :- b1(1, Y)"), {"Y"});
  ASSERT_TRUE(sql.ok());
  ASSERT_EQ(sql->where.size(), 1u);
  EXPECT_FALSE(sql->where[0].rhs_is_column);
  EXPECT_EQ(sql->where[0].constant, Value::Int(1));
}

TEST_F(RdiTest, ComparisonsPushed) {
  auto sql = rdi_.Translate(Q("q(X) :- b1(X, Y) & Y > 15"), {"X"});
  ASSERT_TRUE(sql.ok());
  ASSERT_EQ(sql->where.size(), 1u);
  EXPECT_EQ(sql->where[0].op, rel::CompareOp::kGt);
}

TEST_F(RdiTest, ReversedConstantComparisonNormalized) {
  auto sql = rdi_.Translate(Q("q(X) :- b1(X, Y) & 15 < Y"), {"X"});
  ASSERT_TRUE(sql.ok());
  ASSERT_EQ(sql->where.size(), 1u);
  EXPECT_EQ(sql->where[0].op, rel::CompareOp::kGt);  // Y > 15
}

TEST_F(RdiTest, EvaluableRejected) {
  auto sql =
      rdi_.Translate(Q("q(W) :- b1(X, Y) & plus(X, Y, W)"), {"W"});
  EXPECT_EQ(sql.status().code(), StatusCode::kUnimplemented);
}

TEST_F(RdiTest, UnknownTableRejected) {
  auto sql = rdi_.Translate(Q("q(X) :- zz(X, Y)"), {"X"});
  EXPECT_EQ(sql.status().code(), StatusCode::kNotFound);
}

TEST_F(RdiTest, UnknownNeededVarRejected) {
  auto sql = rdi_.Translate(Q("q(X) :- b1(X, Y)"), {"W"});
  EXPECT_EQ(sql.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RdiTest, FetchRenamesColumnsToVariables) {
  auto fetch = rdi_.Fetch(Q("q(Y, X) :- b1(X, Y)"), {"Y", "X"});
  ASSERT_TRUE(fetch.ok()) << fetch.status().ToString();
  EXPECT_EQ(fetch->bindings.schema().column(0).name, "Y");
  EXPECT_EQ(fetch->bindings.schema().column(1).name, "X");
  EXPECT_EQ(fetch->bindings.NumTuples(), 2u);
  EXPECT_GT(fetch->cost.total_ms, 0);
}

TEST_F(RdiTest, ExistenceFetchKeepsCount) {
  auto fetch = rdi_.Fetch(Q("q() :- b1(1, 10)"), {});
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch->bindings.NumTuples(), 1u);
  EXPECT_EQ(fetch->bindings.schema().size(), 0u);
}

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest()
      : remote_(TestDb()),
        planner_(&model_, &remote_, PlannerConfig{true}) {}

  void AddElement(const std::string& id, const std::string& def,
                  std::vector<Tuple> tuples) {
    CaqlQuery q = Q(def);
    auto ext = std::make_shared<rel::Relation>(id, rel::Schema::FromNames(
                                                       q.HeadVariables()));
    for (Tuple& t : tuples) ext->AppendUnchecked(std::move(t));
    model_.Register(std::make_shared<CacheElement>(id, q, ext));
  }

  CacheModel model_;
  dbms::RemoteDbms remote_;
  QueryPlanner planner_;
};

TEST_F(PlannerTest, EmptyCacheGoesFullyRemote) {
  auto plan = planner_.PlanQuery(Q("q(X, Y) :- b1(X, Y)"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(plan->fully_local);
  ASSERT_EQ(plan->sources.size(), 1u);
  EXPECT_EQ(plan->sources[0].kind, PlanSource::Kind::kRemote);
}

TEST_F(PlannerTest, FullMatchGoesFullyLocal) {
  AddElement("E1", "e(X, Y) :- b1(X, Y)",
             {{Value::Int(1), Value::Int(10)}});
  auto plan = planner_.PlanQuery(Q("q(A) :- b1(A, 10)"));
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->fully_local);
  ASSERT_EQ(plan->sources.size(), 1u);
  EXPECT_EQ(plan->sources[0].kind, PlanSource::Kind::kElement);
  EXPECT_EQ(plan->sources[0].element_id, "E1");
}

TEST_F(PlannerTest, PartialMatchSplitsLocalAndRemote) {
  AddElement("E1", "e(X, Y) :- b1(X, Y)",
             {{Value::Int(1), Value::Int(10)}});
  auto plan = planner_.PlanQuery(Q("q(A, C) :- b1(A, B) & b2(B, C)"));
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->fully_local);
  ASSERT_EQ(plan->sources.size(), 2u);
  bool has_element = false, has_remote = false;
  for (const PlanSource& s : plan->sources) {
    if (s.kind == PlanSource::Kind::kElement) has_element = true;
    if (s.kind == PlanSource::Kind::kRemote) {
      has_remote = true;
      // The remote subquery must export the join variable B.
      EXPECT_NE(std::find(s.remote_vars.begin(), s.remote_vars.end(), "B"),
                s.remote_vars.end());
    }
  }
  EXPECT_TRUE(has_element);
  EXPECT_TRUE(has_remote);
}

TEST_F(PlannerTest, OverlappingElementsPreferCheaperDerivation) {
  // §5.3.3: a single element covering the join beats joining two
  // single-relation elements.
  AddElement("E101", "e(X, Y) :- b1(X, Y)", {{Value::Int(1), Value::Int(10)}});
  AddElement("E102", "e(X, Y) :- b2(X, Y)", {{Value::Int(10), Value::Int(5)}});
  AddElement("E103", "e(X, Y, Z) :- b1(X, Y) & b2(Y, Z)",
             {{Value::Int(1), Value::Int(10), Value::Int(5)}});
  auto plan = planner_.PlanQuery(Q("q(A, C) :- b1(A, B) & b2(B, C)"));
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->fully_local);
  ASSERT_EQ(plan->sources.size(), 1u);
  EXPECT_EQ(plan->sources[0].element_id, "E103");
}

TEST_F(PlannerTest, SubsumptionDisabledForcesRemote) {
  QueryPlanner no_sub(&model_, &remote_, PlannerConfig{false});
  AddElement("E1", "e(X, Y) :- b1(X, Y)", {{Value::Int(1), Value::Int(10)}});
  auto plan = no_sub.PlanQuery(Q("q(A) :- b1(A, 10)"));
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->fully_local);
  EXPECT_EQ(plan->sources[0].kind, PlanSource::Kind::kRemote);
}

TEST_F(PlannerTest, ComparisonsPushedOnlyWhenRemote) {
  AddElement("E1", "e(X, Y) :- b1(X, Y)", {{Value::Int(1), Value::Int(10)}});
  auto plan = planner_.PlanQuery(Q("q(A) :- b1(A, B) & b2(B, C) & C > 4"));
  ASSERT_TRUE(plan.ok());
  // C only occurs remotely → comparison pushed, not residual.
  EXPECT_TRUE(plan->residual_comparisons.empty());
  for (const PlanSource& s : plan->sources) {
    if (s.kind == PlanSource::Kind::kRemote) {
      EXPECT_EQ(s.remote_query.ComparisonAtoms().size(), 1u);
    }
  }
}

TEST_F(PlannerTest, ComparisonSpanningSourcesStaysResidual) {
  AddElement("E1", "e(X, Y) :- b1(X, Y)", {{Value::Int(1), Value::Int(10)}});
  auto plan = planner_.PlanQuery(Q("q(A) :- b1(A, B) & b2(B, C) & A < C"));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->residual_comparisons.size(), 1u);
  EXPECT_EQ(plan->residual_comparisons[0].predicate, "<");
}

TEST_F(PlannerTest, EvaluablesAlwaysLocal) {
  auto plan = planner_.PlanQuery(Q("q(W) :- b1(X, Y) & plus(X, Y, W)"));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->evaluables.size(), 1u);
  for (const PlanSource& s : plan->sources) {
    if (s.kind == PlanSource::Kind::kRemote) {
      EXPECT_TRUE(s.remote_query.EvaluableAtoms().empty());
      // W is needed by the evaluable; X, Y must be shipped.
      EXPECT_EQ(s.remote_vars.size(), 2u);
    }
  }
}

TEST_F(PlannerTest, GeneratorFormElementsNotUsedAsSources) {
  CaqlQuery def = Q("e(X, Y) :- b1(X, Y)");
  model_.Register(std::make_shared<CacheElement>("G1", def));  // generator
  auto plan = planner_.PlanQuery(Q("q(A, B) :- b1(A, B)"));
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->fully_local);
}

TEST_F(PlannerTest, PureBuiltinQueryIsLocal) {
  auto plan = planner_.PlanQuery(Q("check() :- 1 < 2"));
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->fully_local);
  EXPECT_TRUE(plan->sources.empty());
  EXPECT_EQ(plan->residual_comparisons.size(), 1u);
}

}  // namespace
}  // namespace braid::cms
