// Tests for §5.2: co-existing, alternative representations of the same
// relation — sorted copies alongside the extension and its hash indexes,
// and a single cached instance serving multiple uniquely named uses.

#include <gtest/gtest.h>

#include "caql/caql_query.h"
#include "cms/cms.h"

namespace braid::cms {
namespace {

using caql::ParseCaql;
using rel::Value;

dbms::Database TestDb() {
  dbms::Database db;
  rel::Relation b1("b1", rel::Schema::FromNames({"a", "b"}));
  b1.AppendUnchecked({Value::Int(3), Value::Int(30)});
  b1.AppendUnchecked({Value::Int(1), Value::Int(10)});
  b1.AppendUnchecked({Value::Int(2), Value::Int(20)});
  b1.AppendUnchecked({Value::Int(1), Value::Int(5)});
  BRAID_CHECK_OK(db.AddTable(std::move(b1)));
  return db;
}

CacheElementPtr MakeElement() {
  auto def = ParseCaql("e(X, Y) :- b1(X, Y)").value();
  auto ext = std::make_shared<rel::Relation>(
      "E1", rel::Schema::FromNames({"X", "Y"}));
  ext->AppendUnchecked({Value::Int(3), Value::Int(30)});
  ext->AppendUnchecked({Value::Int(1), Value::Int(10)});
  ext->AppendUnchecked({Value::Int(2), Value::Int(20)});
  return std::make_shared<CacheElement>("E1", def, ext);
}

TEST(AlternativeRepresentations, SortedCopyBuiltOnceAndShared) {
  CacheElementPtr e = MakeElement();
  auto s1 = e->EnsureSorted({0});
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s1->tuple(0)[0], Value::Int(1));
  EXPECT_EQ(s1->tuple(2)[0], Value::Int(3));
  auto s2 = e->EnsureSorted({0});
  EXPECT_EQ(s1.get(), s2.get());  // one instance, two uses
  EXPECT_EQ(e->NumSortedRepresentations(), 1u);
}

TEST(AlternativeRepresentations, DifferentOrderingsCoexist) {
  CacheElementPtr e = MakeElement();
  auto by_x = e->EnsureSorted({0});
  auto by_y = e->EnsureSorted({1});
  ASSERT_NE(by_x, nullptr);
  ASSERT_NE(by_y, nullptr);
  EXPECT_NE(by_x.get(), by_y.get());
  EXPECT_EQ(e->NumSortedRepresentations(), 2u);
  // The unsorted extension is untouched.
  EXPECT_EQ(e->extension()->tuple(0)[0], Value::Int(3));
}

TEST(AlternativeRepresentations, SortedIndexedAndPlainShareOneElement) {
  CacheElementPtr e = MakeElement();
  const size_t base = e->ByteSize();
  e->EnsureIndex(0);
  const size_t with_index = e->ByteSize();
  e->EnsureSorted({1});
  const size_t with_both = e->ByteSize();
  EXPECT_GT(with_index, base);
  EXPECT_GT(with_both, with_index);  // representations cost budget
  EXPECT_NE(e->index(0), nullptr);
  EXPECT_NE(e->sorted({1}), nullptr);
}

TEST(AlternativeRepresentations, GeneratorFormHasNoSortedCopy) {
  auto def = ParseCaql("e(X, Y) :- b1(X, Y)").value();
  CacheElement generator("G1", def);
  EXPECT_EQ(generator.EnsureSorted({0}), nullptr);
}

TEST(QuerySorted, OrdersAnswer) {
  dbms::RemoteDbms remote(TestDb());
  Cms cms(&remote, CmsConfig{});
  auto q = ParseCaql("q(X, Y) :- b1(X, Y)").value();
  auto sorted = cms.QuerySorted(q, {"X", "Y"});
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  ASSERT_EQ(sorted->NumTuples(), 4u);
  for (size_t i = 1; i < sorted->NumTuples(); ++i) {
    const auto& prev = sorted->tuple(i - 1);
    const auto& cur = sorted->tuple(i);
    const int c0 = prev[0].Compare(cur[0]);
    EXPECT_TRUE(c0 < 0 || (c0 == 0 && prev[1] <= cur[1]));
  }
}

TEST(QuerySorted, ReusesRepresentationOnExactRepeat) {
  dbms::RemoteDbms remote(TestDb());
  Cms cms(&remote, CmsConfig{});
  auto q = ParseCaql("q(X, Y) :- b1(X, Y)").value();
  ASSERT_TRUE(cms.QuerySorted(q, {"Y"}).ok());  // caches + sorts
  CacheElementPtr element =
      cms.cache().model().ByCanonicalKey(q.CanonicalKey());
  ASSERT_NE(element, nullptr);
  EXPECT_EQ(element->NumSortedRepresentations(), 1u);
  auto before = element->sorted({1});
  ASSERT_TRUE(cms.QuerySorted(q, {"Y"}).ok());
  EXPECT_EQ(element->sorted({1}).get(), before.get());
  EXPECT_EQ(element->NumSortedRepresentations(), 1u);
}

TEST(QuerySorted, RejectsNonHeadVariable) {
  dbms::RemoteDbms remote(TestDb());
  Cms cms(&remote, CmsConfig{});
  auto q = ParseCaql("q(X) :- b1(X, Y)").value();
  EXPECT_EQ(cms.QuerySorted(q, {"Y"}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SharedUse, IdenticalDefinitionsShareOneCachedInstance) {
  // §5.2: two uniquely named uses of the same relation — the CMS keeps a
  // single instance. Two queries identical up to renaming share a
  // canonical key, so the second is an exact hit on the first's element.
  dbms::RemoteDbms remote(TestDb());
  Cms cms(&remote, CmsConfig{});
  auto use1 = ParseCaql("q(X, Y) :- b1(X, Y)").value();
  auto use2 = ParseCaql("q(A, B) :- b1(A, B)").value();
  ASSERT_TRUE(cms.Query(use1).ok());
  const size_t elements_after_first = cms.cache().model().size();
  auto a2 = cms.Query(use2);
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->outcome, CacheOutcome::kExact);
  EXPECT_EQ(cms.cache().model().size(), elements_after_first);
}

}  // namespace
}  // namespace braid::cms
