// Unit and property tests for the relational operators, predicates, and
// hash indexes.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "common/rng.h"
#include "relational/index.h"
#include "relational/operators.h"
#include "relational/predicate.h"

namespace braid::rel {
namespace {

Relation MakeRelation(const std::string& name,
                      const std::vector<std::string>& cols,
                      std::vector<Tuple> tuples) {
  Relation r(name, Schema::FromNames(cols));
  for (Tuple& t : tuples) r.AppendUnchecked(std::move(t));
  return r;
}

Relation SmallR() {
  return MakeRelation("r", {"a", "b"},
                      {{Value::Int(1), Value::Int(10)},
                       {Value::Int(2), Value::Int(20)},
                       {Value::Int(3), Value::Int(30)},
                       {Value::Int(2), Value::Int(25)}});
}

Relation SmallS() {
  return MakeRelation("s", {"b", "c"},
                      {{Value::Int(10), Value::String("x")},
                       {Value::Int(20), Value::String("y")},
                       {Value::Int(20), Value::String("z")},
                       {Value::Int(99), Value::String("w")}});
}

std::multiset<std::string> Rows(const Relation& r) {
  std::multiset<std::string> out;
  for (const Tuple& t : r.tuples()) out.insert(TupleToString(t));
  return out;
}

TEST(Predicate, ColumnConstEval) {
  auto p = Predicate::ColumnConst(0, CompareOp::kGt, Value::Int(1));
  EXPECT_TRUE(p->Eval({Value::Int(2)}));
  EXPECT_FALSE(p->Eval({Value::Int(1)}));
}

TEST(Predicate, ColumnColumnEval) {
  auto p = Predicate::ColumnColumn(0, CompareOp::kEq, 1);
  EXPECT_TRUE(p->Eval({Value::Int(3), Value::Int(3)}));
  EXPECT_FALSE(p->Eval({Value::Int(3), Value::Int(4)}));
}

TEST(Predicate, BooleanCombinators) {
  auto lt = Predicate::ColumnConst(0, CompareOp::kLt, Value::Int(5));
  auto gt = Predicate::ColumnConst(0, CompareOp::kGt, Value::Int(1));
  auto band = Predicate::And({lt, gt});
  EXPECT_TRUE(band->Eval({Value::Int(3)}));
  EXPECT_FALSE(band->Eval({Value::Int(0)}));
  auto bor = Predicate::Or({Predicate::ColumnConst(0, CompareOp::kEq,
                                                   Value::Int(0)),
                            Predicate::ColumnConst(0, CompareOp::kEq,
                                                   Value::Int(9))});
  EXPECT_TRUE(bor->Eval({Value::Int(9)}));
  EXPECT_FALSE(bor->Eval({Value::Int(5)}));
  auto bnot = Predicate::Not(lt);
  EXPECT_TRUE(bnot->Eval({Value::Int(6)}));
}

TEST(Predicate, EmptyAndIsTrue) {
  auto p = Predicate::And({});
  EXPECT_EQ(p->kind(), Predicate::Kind::kTrue);
  EXPECT_TRUE(p->Eval({}));
}

TEST(Predicate, ComparisonsWithNullAreFalseExceptEquality) {
  EXPECT_FALSE(EvalCompare(CompareOp::kLt, Value::Null(), Value::Int(1)));
  EXPECT_FALSE(EvalCompare(CompareOp::kGe, Value::Int(1), Value::Null()));
  EXPECT_TRUE(EvalCompare(CompareOp::kEq, Value::Null(), Value::Null()));
}

TEST(ReverseOp, AllCases) {
  EXPECT_EQ(ReverseCompareOp(CompareOp::kLt), CompareOp::kGt);
  EXPECT_EQ(ReverseCompareOp(CompareOp::kLe), CompareOp::kGe);
  EXPECT_EQ(ReverseCompareOp(CompareOp::kEq), CompareOp::kEq);
  EXPECT_EQ(ReverseCompareOp(CompareOp::kNe), CompareOp::kNe);
}

TEST(Select, FiltersRows) {
  Relation out = Select(
      SmallR(), *Predicate::ColumnConst(0, CompareOp::kEq, Value::Int(2)));
  EXPECT_EQ(out.NumTuples(), 2u);
}

TEST(Project, ReordersAndDuplicatesColumns) {
  Relation out = Project(SmallR(), {1, 0, 1});
  EXPECT_EQ(out.schema().size(), 3u);
  EXPECT_EQ(out.tuple(0), (Tuple{Value::Int(10), Value::Int(1),
                                 Value::Int(10)}));
}

TEST(HashJoin, MatchesExpectedPairs) {
  Relation out = HashJoin(SmallR(), SmallS(), {JoinKey{1, 0}});
  // b=10 matches once; b=20 twice (r row (2,20) with s y,z); b=25,30 none.
  EXPECT_EQ(out.NumTuples(), 3u);
}

TEST(HashJoin, EmptyKeyIsCrossProduct) {
  Relation out = HashJoin(SmallR(), SmallS(), {});
  EXPECT_EQ(out.NumTuples(), SmallR().NumTuples() * SmallS().NumTuples());
}

TEST(HashJoin, ResidualFilters) {
  auto residual =
      Predicate::ColumnConst(3, CompareOp::kEq, Value::String("y"));
  Relation out = HashJoin(SmallR(), SmallS(), {JoinKey{1, 0}}, residual);
  EXPECT_EQ(out.NumTuples(), 1u);
}

TEST(Union, ConcatenatesBags) {
  auto out = Union(SmallR(), SmallR());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumTuples(), 8u);
}

TEST(Union, ArityMismatchRejected) {
  auto out = Union(SmallR(), SmallS());
  EXPECT_TRUE(out.ok());  // Same arity (2) — allowed.
  Relation one_col = MakeRelation("t", {"x"}, {{Value::Int(1)}});
  auto bad = Union(SmallR(), one_col);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(Difference, RespectsMultiplicity) {
  Relation left = MakeRelation(
      "l", {"x"}, {{Value::Int(1)}, {Value::Int(1)}, {Value::Int(2)}});
  Relation right = MakeRelation("r", {"x"}, {{Value::Int(1)}});
  auto out = Difference(left, right);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(Rows(*out),
            (std::multiset<std::string>{"(1)", "(2)"}));
}

TEST(Distinct, RemovesDuplicatesKeepsFirstOrder) {
  Relation in = MakeRelation(
      "d", {"x"}, {{Value::Int(2)}, {Value::Int(1)}, {Value::Int(2)}});
  Relation out = Distinct(in);
  ASSERT_EQ(out.NumTuples(), 2u);
  EXPECT_EQ(out.tuple(0)[0], Value::Int(2));
  EXPECT_EQ(out.tuple(1)[0], Value::Int(1));
}

TEST(Sort, LexicographicByColumns) {
  Relation out = Sort(SmallR(), {0, 1});
  for (size_t i = 1; i < out.NumTuples(); ++i) {
    EXPECT_LE(out.tuple(i - 1)[0].Compare(out.tuple(i)[0]), 0);
  }
  // Secondary key: rows with a=2 sorted by b.
  EXPECT_EQ(out.tuple(1)[1], Value::Int(20));
  EXPECT_EQ(out.tuple(2)[1], Value::Int(25));
}

TEST(Aggregate, GroupByWithCountAndSum) {
  Relation out = Aggregate(SmallR(), {0},
                           {AggSpec{AggFn::kCount, 0, "n"},
                            AggSpec{AggFn::kSum, 1, "total"}});
  // Groups: a=1 (1 row), a=2 (2 rows), a=3 (1 row).
  EXPECT_EQ(out.NumTuples(), 3u);
  for (const Tuple& t : out.tuples()) {
    if (t[0] == Value::Int(2)) {
      EXPECT_EQ(t[1], Value::Int(2));
      EXPECT_EQ(t[2], Value::Double(45.0));
    }
  }
}

TEST(Aggregate, GlobalOverEmptyInputYieldsCountZero) {
  Relation empty("e", Schema::FromNames({"x"}));
  Relation out = Aggregate(empty, {}, {AggSpec{AggFn::kCount, 0, "n"},
                                       AggSpec{AggFn::kMin, 0, "m"}});
  ASSERT_EQ(out.NumTuples(), 1u);
  EXPECT_EQ(out.tuple(0)[0], Value::Int(0));
  EXPECT_TRUE(out.tuple(0)[1].is_null());
}

TEST(Aggregate, MinMaxAvg) {
  Relation out = Aggregate(SmallR(), {},
                           {AggSpec{AggFn::kMin, 1, "lo"},
                            AggSpec{AggFn::kMax, 1, "hi"},
                            AggSpec{AggFn::kAvg, 1, "mean"}});
  ASSERT_EQ(out.NumTuples(), 1u);
  EXPECT_EQ(out.tuple(0)[0], Value::Int(10));
  EXPECT_EQ(out.tuple(0)[1], Value::Int(30));
  EXPECT_EQ(out.tuple(0)[2], Value::Double(85.0 / 4));
}

TEST(HashIndex, LookupFindsAllRows) {
  Relation r = SmallR();
  HashIndex index(r, 0);
  EXPECT_EQ(index.Lookup(Value::Int(2)).size(), 2u);
  EXPECT_EQ(index.Lookup(Value::Int(99)).size(), 0u);
  EXPECT_EQ(index.NumDistinctKeys(), 3u);
}

TEST(Relation, AppendChecksArity) {
  Relation r("t", Schema::FromNames({"a", "b"}));
  EXPECT_TRUE(r.Append({Value::Int(1), Value::Int(2)}).ok());
  Status bad = r.Append({Value::Int(1)});
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Property sweep: HashJoin agrees with NestedLoopJoin on random inputs.

struct JoinCase {
  size_t left_rows;
  size_t right_rows;
  int64_t key_domain;
  uint64_t seed;
};

class JoinEquivalence : public ::testing::TestWithParam<JoinCase> {};

Relation RandomRelation(const std::string& name, size_t rows,
                        int64_t key_domain, Rng* rng) {
  Relation r(name, Schema::FromNames({"k", "v"}));
  for (size_t i = 0; i < rows; ++i) {
    r.AppendUnchecked(Tuple{Value::Int(rng->Uniform(0, key_domain - 1)),
                            Value::Int(rng->Uniform(0, 1000))});
  }
  return r;
}

TEST_P(JoinEquivalence, HashJoinMatchesNestedLoop) {
  const JoinCase& c = GetParam();
  Rng rng(c.seed);
  Relation left = RandomRelation("l", c.left_rows, c.key_domain, &rng);
  Relation right = RandomRelation("r", c.right_rows, c.key_domain, &rng);

  Relation hash = HashJoin(left, right, {JoinKey{0, 0}});
  Relation nested = NestedLoopJoin(
      left, right, *Predicate::ColumnColumn(0, CompareOp::kEq, 2));
  EXPECT_EQ(Rows(hash), Rows(nested));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JoinEquivalence,
    ::testing::Values(JoinCase{0, 10, 5, 1}, JoinCase{10, 0, 5, 2},
                      JoinCase{1, 1, 1, 3}, JoinCase{20, 20, 3, 4},
                      JoinCase{50, 30, 10, 5}, JoinCase{100, 100, 7, 6},
                      JoinCase{64, 256, 64, 7}, JoinCase{200, 50, 1, 8}));

// Property: Select distributes over Union.
TEST(Property, SelectDistributesOverUnion) {
  Rng rng(11);
  Relation a = RandomRelation("a", 40, 10, &rng);
  Relation b = RandomRelation("b", 30, 10, &rng);
  auto pred = Predicate::ColumnConst(0, CompareOp::kLt, Value::Int(5));
  auto u = Union(a, b);
  ASSERT_TRUE(u.ok());
  Relation lhs = Select(*u, *pred);
  auto rhs = Union(Select(a, *pred), Select(b, *pred));
  ASSERT_TRUE(rhs.ok());
  EXPECT_EQ(Rows(lhs), Rows(*rhs));
}

// Property: Distinct is idempotent.
TEST(Property, DistinctIdempotent) {
  Rng rng(12);
  Relation a = RandomRelation("a", 60, 5, &rng);
  Relation once = Distinct(a);
  Relation twice = Distinct(once);
  EXPECT_EQ(Rows(once), Rows(twice));
}

// Property: index lookup equals scan filter.
TEST(Property, IndexLookupMatchesScan) {
  Rng rng(13);
  Relation a = RandomRelation("a", 150, 12, &rng);
  HashIndex index(a, 0);
  for (int64_t key = 0; key < 12; ++key) {
    const auto& rows = index.Lookup(Value::Int(key));
    size_t scan_count = 0;
    for (const Tuple& t : a.tuples()) {
      if (t[0] == Value::Int(key)) ++scan_count;
    }
    EXPECT_EQ(rows.size(), scan_count) << "key " << key;
  }
}

}  // namespace
}  // namespace braid::rel
