// Tests for the multi-session CMS: N independent IE sessions sharing one
// striped cache, the session scheduler's fairness/serialization contract,
// and the replacement policy's advice protection under concurrent
// eviction. These are the real-concurrency successors of the old
// BRAID_SINGLE_THREAD death tests — they run under TSan in CI.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "caql/caql_query.h"
#include "cms/cache_model.h"
#include "cms/cms.h"
#include "cms/session_scheduler.h"
#include "common/status.h"
#include "common/strings.h"
#include "dbms/remote_dbms.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "relational/relation.h"
#include "relational/value.h"

namespace braid::cms {
namespace {

/// A small database: `a` (referenced by the test advice, so cached
/// elements over it are session-relevant) and `b` (never advised).
dbms::Database MakeDatabase(size_t rows = 64) {
  dbms::Database db;
  for (const char* name : {"a", "b"}) {
    rel::Relation t(name, rel::Schema::FromNames({"x", "y"}));
    for (size_t i = 0; i < rows; ++i) {
      t.AppendUnchecked({rel::Value::Int(static_cast<int64_t>(i)),
                         rel::Value::Int(static_cast<int64_t>(i % 8))});
    }
    BRAID_CHECK_OK(db.AddTable(std::move(t)));
  }
  return db;
}

advice::AdviceSet AdviceOverA() {
  advice::ViewSpec v;
  v.id = "va";
  v.head = {advice::AnnotatedVar{"X", advice::Binding::kProducer},
            advice::AnnotatedVar{"Y", advice::Binding::kProducer}};
  v.body = {logic::Atom("a", {logic::Term::Var("X"), logic::Term::Var("Y")})};
  advice::AdviceSet advice;
  advice.view_specs = {v};
  // Declares `a` session-relevant: cached elements reading it are
  // protected at the horizon boundary by AdvisedDistance.
  advice.base_relations = {"a"};
  return advice;
}

caql::CaqlQuery Parse(const std::string& text) {
  auto q = caql::ParseCaql(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q.value());
}

CmsConfig PlainConfig(size_t threads = 4) {
  CmsConfig config;
  config.enable_advice = false;
  config.enable_prefetch = false;
  config.enable_generalization = false;
  config.num_threads = threads;
  return config;
}

TEST(CacheModelStripes, SameKeyRegisterDisplacesTheRaceLoser) {
  CacheModel model;
  const caql::CaqlQuery def = Parse("e(X, Y) :- a(X, Y)");
  auto ext = std::make_shared<rel::Relation>(
      "ext", rel::Schema::FromNames({"X", "Y"}));
  model.Register(std::make_shared<CacheElement>("E1", def, ext));
  // Same canonical definition under a fresh id — two sessions raced to
  // install the same result and this one lost. The earlier element must
  // be displaced so the key maps to exactly one element. (Regression:
  // RemoveLocked took the displaced id by reference into the very map
  // node it erased, then read the freed string.)
  model.Register(std::make_shared<CacheElement>("E2", def, ext));
  EXPECT_EQ(model.Find("E1"), nullptr);
  ASSERT_NE(model.Find("E2"), nullptr);
  ASSERT_NE(model.ByCanonicalKey(def.CanonicalKey()), nullptr);
  EXPECT_EQ(model.ByCanonicalKey(def.CanonicalKey())->id(), "E2");
  EXPECT_EQ(model.elements().size(), 1u);
}

TEST(CmsSessions, SessionsShareOneCache) {
  dbms::RemoteDbms remote(MakeDatabase());
  Cms cms(&remote, PlainConfig());
  CmsSession* s1 = cms.OpenSession();
  CmsSession* s2 = cms.OpenSession();

  const caql::CaqlQuery q = Parse("d(X, Y) :- a(X, Y)");
  auto a1 = cms.Query(*s1, q);
  ASSERT_TRUE(a1.ok()) << a1.status().ToString();
  EXPECT_EQ(a1.value().outcome, CacheOutcome::kRemote);

  // The second session hits the element the first one installed.
  auto a2 = cms.Query(*s2, q);
  ASSERT_TRUE(a2.ok()) << a2.status().ToString();
  EXPECT_EQ(a2.value().outcome, CacheOutcome::kExact);
  EXPECT_EQ(remote.stats().queries, 1u);

  // Metrics are per session.
  EXPECT_EQ(s1->metrics().ie_queries, 1u);
  EXPECT_EQ(s1->metrics().remote_only, 1u);
  EXPECT_EQ(s1->metrics().exact_hits, 0u);
  EXPECT_EQ(s2->metrics().exact_hits, 1u);
  EXPECT_EQ(cms.metrics().ie_queries, 0u);  // default session untouched

  cms.CloseSession(s1);
  cms.CloseSession(s2);
}

TEST(CmsSessions, CloseSessionIsIdempotentAndIgnoresDefault) {
  dbms::RemoteDbms remote(MakeDatabase());
  Cms cms(&remote, PlainConfig());
  cms.CloseSession(nullptr);
  CmsSession* s = cms.OpenSession();
  cms.CloseSession(s);
  cms.CloseSession(s);  // already gone: no-op
  // The default session is owned by the Cms for its whole lifetime.
  BRAID_CHECK_OK(cms.Query(Parse("d(X, Y) :- a(X, Y)")).status());
  EXPECT_EQ(cms.metrics().ie_queries, 1u);
}

TEST(CmsSessions, QueryAsyncSerializesWithinASession) {
  dbms::RemoteDbms remote(MakeDatabase());
  Cms cms(&remote, PlainConfig(/*threads=*/4));
  CmsSession* s = cms.OpenSession();

  constexpr size_t kQueries = 24;
  std::vector<std::future<Result<CmsAnswer>>> futures;
  futures.reserve(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    // All identical: after the first remote fetch, every later one must be
    // an exact hit — which can only be counted correctly if the session's
    // (unlocked) metrics are never touched by two queries at once.
    futures.push_back(cms.QueryAsync(*s, Parse("d(X, Y) :- a(X, Y)")));
  }
  for (auto& f : futures) {
    auto a = f.get();
    ASSERT_TRUE(a.ok()) << a.status().ToString();
  }
  EXPECT_EQ(s->metrics().ie_queries, kQueries);
  EXPECT_EQ(s->metrics().remote_only + s->metrics().exact_hits, kQueries);
  EXPECT_EQ(s->metrics().exact_hits, kQueries - 1);
  EXPECT_EQ(remote.stats().queries, 1u);
  cms.CloseSession(s);
}

TEST(CmsSessions, ConcurrentSessionsGetCorrectAnswers) {
  const size_t kRows = 64;
  dbms::RemoteDbms remote(MakeDatabase(kRows));
  Cms cms(&remote, PlainConfig(/*threads=*/4));

  constexpr size_t kSessions = 4;
  constexpr size_t kPerSession = 16;
  std::vector<CmsSession*> sessions;
  for (size_t s = 0; s < kSessions; ++s) sessions.push_back(cms.OpenSession());

  std::vector<std::thread> drivers;
  std::atomic<size_t> wrong{0};
  for (size_t s = 0; s < kSessions; ++s) {
    drivers.emplace_back([&cms, &sessions, &wrong, s] {
      for (size_t i = 0; i < kPerSession; ++i) {
        // y = (s*kPerSession + i) % 8 selects kRows/8 tuples of `a`; the
        // mix of distinct constants across sessions makes installs and
        // snapshot reads race on the same stripes.
        const size_t y = (s * kPerSession + i) % 8;
        auto q = caql::ParseCaql(StrCat("q", s, "_", i, "(X) :- a(X, ", y,
                                        ")"));
        auto answer = cms.QueryAsync(*sessions[s], q.value()).get();
        if (!answer.ok() || answer.value().relation == nullptr ||
            answer.value().relation->NumTuples() != 64 / 8) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  EXPECT_EQ(wrong.load(), 0u);
  for (CmsSession* s : sessions) {
    EXPECT_EQ(s->metrics().ie_queries, kPerSession);
    cms.CloseSession(s);
  }
}

TEST(CmsSessions, CloseSessionWhileOthersAreQuerying) {
  dbms::RemoteDbms remote(MakeDatabase());
  CmsConfig config = PlainConfig(/*threads=*/4);
  config.enable_advice = true;  // advisor walks the session registry
  config.cache_budget_bytes = 8u << 10;  // small: evictions consult it
  Cms cms(&remote, config);

  CmsSession* doomed = cms.OpenSession(AdviceOverA());
  CmsSession* survivor = cms.OpenSession(AdviceOverA());
  std::thread driver([&cms, survivor] {
    for (size_t i = 0; i < 24; ++i) {
      auto q = caql::ParseCaql(StrCat("w", i, "(X) :- b(X, ", i % 8, ")"));
      BRAID_CHECK_OK(cms.Query(*survivor, q.value()).status());
    }
  });
  // Unregistering `doomed` races the survivor's queries (and any eviction
  // pass walking the registry) — this must neither deadlock nor crash.
  cms.CloseSession(doomed);
  driver.join();
  EXPECT_EQ(survivor->metrics().ie_queries, 24u);
  cms.CloseSession(survivor);
}

TEST(CmsSessions, ObsRegistryExportsSessionAndStripeInstruments) {
  dbms::RemoteDbms remote(MakeDatabase());
  Cms cms(&remote, PlainConfig());
  CmsSession* s = cms.OpenSession();
  BRAID_CHECK_OK(cms.QueryAsync(*s, Parse("d(X, Y) :- a(X, Y)")).get()
                     .status());
  cms.DrainSessions();
  cms.CloseSession(s);
  const std::string json = obs::MetricsRegistry::Global().ToJson();
  EXPECT_NE(json.find("sessions.active"), std::string::npos);
  EXPECT_NE(json.find("sessions.queued"), std::string::npos);
  EXPECT_NE(json.find("cache.lock_wait_ms"), std::string::npos);
  EXPECT_NE(json.find("cache.stripe_contention"), std::string::npos);
}

// --- session scheduler unit tests -------------------------------------

TEST(SessionScheduler, PerSessionFifoAndAtMostOneInFlight) {
  exec::ThreadPool pool(4);
  SessionScheduler scheduler(&pool);

  constexpr uint64_t kSessions = 3;
  constexpr int kTasks = 40;
  std::vector<std::vector<int>> order(kSessions);
  std::vector<std::atomic<int>> running(kSessions);
  std::atomic<bool> overlapped{false};
  Mutex order_mu;

  for (int t = 0; t < kTasks; ++t) {
    for (uint64_t s = 0; s < kSessions; ++s) {
      scheduler.Enqueue(s, [&, s, t] {
        if (running[s].fetch_add(1, std::memory_order_acq_rel) != 0) {
          overlapped.store(true, std::memory_order_relaxed);
        }
        {
          MutexLock lock(&order_mu);
          order[s].push_back(t);
        }
        running[s].fetch_sub(1, std::memory_order_acq_rel);
      });
    }
  }
  scheduler.Drain();

  EXPECT_FALSE(overlapped.load());  // serialization per session
  for (uint64_t s = 0; s < kSessions; ++s) {
    ASSERT_EQ(order[s].size(), static_cast<size_t>(kTasks));
    for (int t = 0; t < kTasks; ++t) EXPECT_EQ(order[s][t], t);  // FIFO
  }
  EXPECT_EQ(scheduler.NumActive(), 0u);
  EXPECT_EQ(scheduler.NumQueued(), 0u);
}

TEST(SessionScheduler, PoollessDegradesToInlineExecution) {
  SessionScheduler scheduler(nullptr);
  int runs = 0;
  scheduler.Enqueue(7, [&runs] { ++runs; });
  EXPECT_EQ(runs, 1);  // ran inside Enqueue
  scheduler.Drain();
  EXPECT_EQ(runs, 1);
}

TEST(SessionScheduler, DrainFromAPoolThreadDoesNotDeadlock) {
  // A scheduled task that itself waits for other scheduled work must
  // help-drain rather than park a worker forever.
  exec::ThreadPool pool(1);
  SessionScheduler scheduler(&pool);
  std::atomic<int> done{0};
  scheduler.Enqueue(1, [&] {
    scheduler.Enqueue(2, [&] { done.fetch_add(1); });
    done.fetch_add(1);
  });
  scheduler.Drain();
  EXPECT_EQ(done.load(), 2);
}

// --- concurrent eviction under advice protection ----------------------

TEST(CmsSessions, ConcurrentEvictionNeverTakesAdvisedOverUnadvised) {
  // N sessions install at capacity and race MakeRoom. The advice marks
  // elements over `a` session-relevant (protected within the horizon);
  // elements over `b` are unadvised. Since unadvised victims exist at
  // every point of the run, no advised element may ever be evicted, and
  // the footprint must settle within budget.
  dbms::RemoteDbms remote(MakeDatabase(/*rows=*/64));
  CmsConfig config;
  config.enable_prefetch = false;
  config.enable_generalization = false;
  config.enable_advice = true;
  config.num_threads = 4;
  config.cache_budget_bytes = 24u << 10;  // small enough to churn
  Cms cms(&remote, config);

  constexpr size_t kSessions = 4;
  std::vector<CmsSession*> sessions;
  for (size_t s = 0; s < kSessions; ++s) {
    sessions.push_back(cms.OpenSession(AdviceOverA()));
  }

  // Seed the advised (protected) elements: a handful of small selections
  // over `a`, well under budget on their own.
  constexpr size_t kHot = 4;
  for (size_t h = 0; h < kHot; ++h) {
    auto q = caql::ParseCaql(StrCat("hot", h, "(X) :- a(X, ", h, ")"));
    BRAID_CHECK_OK(cms.Query(*sessions[0], q.value()).status());
  }

  std::vector<std::thread> drivers;
  for (size_t s = 0; s < kSessions; ++s) {
    drivers.emplace_back([&cms, &sessions, s] {
      for (size_t i = 0; i < 24; ++i) {
        // Distinct definitions over the unadvised `b`: every one installs
        // a new element, forcing eviction passes once at capacity.
        auto q = caql::ParseCaql(
            StrCat("cold", s, "_", i, "(X, Y) :- b(X, Y) & b(Y, ", i % 8,
                   ")"));
        BRAID_CHECK_OK(cms.Query(*sessions[s], q.value()).status());
      }
    });
  }
  for (std::thread& t : drivers) t.join();

  EXPECT_LE(cms.cache().model().TotalBytes(), cms.cache().budget_bytes());
  EXPECT_GT(cms.cache().stats().evictions.load(), 0u)
      << "budget never reached: the race under test did not happen";

  // Every advised element survived; only unadvised ones were evicted.
  size_t advised_resident = 0;
  for (const auto& [id, element] : cms.cache().model().elements()) {
    bool advised = false;
    for (const auto& atom : element->definition().RelationAtoms()) {
      if (atom.predicate == "a") advised = true;
    }
    advised_resident += advised ? 1 : 0;
  }
  EXPECT_EQ(advised_resident, kHot);

  for (CmsSession* s : sessions) cms.CloseSession(s);
}

}  // namespace
}  // namespace braid::cms
