// Tests for the BraidSystem facade: wiring, query-text entry points, error
// propagation across the three components, and schema/KB mismatch
// handling (failure injection).

#include <gtest/gtest.h>

#include "braid/braid_system.h"
#include "workload/generators.h"

namespace braid {
namespace {

using rel::Value;

dbms::Database SmallDb() {
  dbms::Database db;
  rel::Relation b("b", rel::Schema::FromNames({"x", "y"}));
  b.AppendUnchecked({Value::Int(1), Value::Int(2)});
  b.AppendUnchecked({Value::Int(2), Value::Int(3)});
  BRAID_CHECK_OK(db.AddTable(std::move(b)));
  return db;
}

logic::KnowledgeBase SmallKb() {
  logic::KnowledgeBase kb;
  BRAID_CHECK_OK(logic::ParseProgram(R"(
#base b(x, y).
hop2(X, Z) :- b(X, Y), b(Y, Z).
)",
                            &kb));
  return kb;
}

TEST(BraidSystem, AskByTextAndByAtomAgree) {
  BraidSystem braid(SmallDb(), SmallKb());
  auto by_text = braid.Ask("hop2(X, Z)?");
  ASSERT_TRUE(by_text.ok());
  auto by_atom = braid.Ask(logic::ParseQueryAtom("hop2(X, Z)").value());
  ASSERT_TRUE(by_atom.ok());
  EXPECT_EQ(by_text->solutions.NumTuples(), by_atom->solutions.NumTuples());
  ASSERT_EQ(by_text->solutions.NumTuples(), 1u);
  EXPECT_EQ(by_text->solutions.tuple(0),
            (rel::Tuple{Value::Int(1), Value::Int(3)}));
}

TEST(BraidSystem, MalformedQueryTextRejected) {
  BraidSystem braid(SmallDb(), SmallKb());
  auto out = braid.Ask("hop2(X,");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kParseError);
}

TEST(BraidSystem, UnknownPredicateRejected) {
  BraidSystem braid(SmallDb(), SmallKb());
  auto out = braid.Ask("mystery(X)?");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST(BraidSystem, KbDeclaresTableMissingFromDatabase) {
  // Failure injection: the KB declares a base relation the remote DBMS
  // does not have. The error surfaces as NotFound from the RDI, not a
  // crash.
  logic::KnowledgeBase kb;
  BRAID_CHECK_OK(logic::ParseProgram(R"(
#base ghost(x).
p(X) :- ghost(X).
)",
                            &kb));
  BraidSystem braid(SmallDb(), std::move(kb));
  auto out = braid.Ask("p(X)?");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST(BraidSystem, KbArityMismatchWithDatabase) {
  // KB declares b/3 but the table is binary: the translation layer
  // reports InvalidArgument.
  logic::KnowledgeBase kb;
  BRAID_CHECK_OK(logic::ParseProgram(R"(
#base b(x, y, z).
p(X) :- b(X, Y, Z).
)",
                            &kb));
  BraidSystem braid(SmallDb(), std::move(kb));
  auto out = braid.Ask("p(X)?");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(BraidSystem, GroundQuerySucceedsOrFailsCleanly) {
  BraidSystem braid(SmallDb(), SmallKb());
  auto yes = braid.Ask("hop2(1, 3)?");
  ASSERT_TRUE(yes.ok()) << yes.status().ToString();
  EXPECT_EQ(yes->solutions.NumTuples(), 1u);
  auto no = braid.Ask("hop2(1, 9)?");
  ASSERT_TRUE(no.ok());
  EXPECT_EQ(no->solutions.NumTuples(), 0u);
}

TEST(BraidSystem, ReconfigureStrategyBetweenQueries) {
  BraidSystem braid(SmallDb(), SmallKb());
  auto interp = braid.Ask("hop2(X, Z)?");
  ASSERT_TRUE(interp.ok());
  ie::IeConfig config = braid.ie().config();
  config.strategy = ie::StrategyKind::kCompiled;
  braid.ie().set_config(config);
  auto compiled = braid.Ask("hop2(X, Z)?");
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(interp->solutions.NumTuples(), compiled->solutions.NumTuples());
}

TEST(BraidSystem, MetricsVisibleThroughFacade) {
  BraidSystem braid(SmallDb(), SmallKb());
  ASSERT_TRUE(braid.Ask("hop2(X, Z)?").ok());
  EXPECT_GT(braid.cms().metrics().ie_queries, 0u);
  EXPECT_GT(braid.remote().stats().queries, 0u);
  EXPECT_GT(braid.cms().cache().model().size(), 0u);
}

TEST(BraidSystem, EmptyDatabaseTableYieldsNoSolutions) {
  dbms::Database db;
  rel::Relation empty("b", rel::Schema::FromNames({"x", "y"}));
  BRAID_CHECK_OK(db.AddTable(std::move(empty)));
  BraidSystem braid(std::move(db), SmallKb());
  auto out = braid.Ask("hop2(X, Z)?");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->solutions.empty());
}

TEST(BraidSystem, LargeSessionStaysWithinCacheBudget) {
  workload::GenealogyParams params;
  params.people = 300;
  BraidOptions options;
  options.cms.cache_budget_bytes = 8192;
  logic::KnowledgeBase kb;
  BRAID_CHECK_OK(logic::ParseProgram(workload::GenealogyKb(), &kb));
  BraidSystem braid(workload::MakeGenealogyDatabase(params), std::move(kb),
                    options);
  for (int i = 0; i < 10; ++i) {
    auto out = braid.Ask("grandparent(" + std::to_string(250 + i) + ", Y)?");
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_LE(braid.cms().cache().model().TotalBytes(), 8192u);
  }
}

}  // namespace
}  // namespace braid
