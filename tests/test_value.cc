// Unit and property tests for rel::Value, Schema, and Tuple.

#include <gtest/gtest.h>

#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace braid::rel {
namespace {

TEST(Value, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
}

TEST(Value, TypedConstruction) {
  EXPECT_EQ(Value::Int(42).type(), ValueType::kInt);
  EXPECT_EQ(Value::Double(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value::String("x").type(), ValueType::kString);
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("x").AsString(), "x");
}

TEST(Value, IntDoubleCrossTypeEquality) {
  EXPECT_EQ(Value::Int(2), Value::Double(2.0));
  EXPECT_NE(Value::Int(2), Value::Double(2.5));
  EXPECT_LT(Value::Int(2), Value::Double(2.5));
  EXPECT_GT(Value::Double(3.5), Value::Int(3));
}

TEST(Value, EqualValuesHashEqual) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
}

TEST(Value, NullSortsFirst) {
  EXPECT_LT(Value::Null(), Value::Int(-100));
  EXPECT_LT(Value::Null(), Value::String(""));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(Value, NumericSortsBeforeString) {
  EXPECT_LT(Value::Int(999), Value::String("0"));
  EXPECT_LT(Value::Double(1e18), Value::String("a"));
}

TEST(Value, StringOrdering) {
  EXPECT_LT(Value::String("abc"), Value::String("abd"));
  EXPECT_LT(Value::String(""), Value::String("a"));
  EXPECT_EQ(Value::String("z"), Value::String("z"));
}

TEST(Value, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
}

TEST(Value, ByteSizeTracksStringLength) {
  EXPECT_GT(Value::String(std::string(100, 'x')).ByteSize(),
            Value::String("x").ByteSize());
  EXPECT_EQ(Value::Int(1).ByteSize(), 8u);
}

/// Property: Compare defines a total order (antisymmetry + transitivity on
/// a fixed sample).
class ValueOrderProperty : public ::testing::TestWithParam<int> {};

std::vector<Value> SampleValues() {
  return {Value::Null(),        Value::Int(-5),      Value::Int(0),
          Value::Int(7),        Value::Double(-5.0), Value::Double(6.9),
          Value::Double(7.0),   Value::String(""),   Value::String("a"),
          Value::String("abc"), Value::Int(1000000), Value::Double(0.0)};
}

TEST(ValueOrder, AntisymmetryOverSample) {
  auto values = SampleValues();
  for (const Value& a : values) {
    for (const Value& b : values) {
      EXPECT_EQ(a.Compare(b) < 0, b.Compare(a) > 0)
          << a.ToString() << " vs " << b.ToString();
      EXPECT_EQ(a.Compare(b) == 0, b.Compare(a) == 0);
    }
  }
}

TEST(ValueOrder, TransitivityOverSample) {
  auto values = SampleValues();
  for (const Value& a : values) {
    for (const Value& b : values) {
      for (const Value& c : values) {
        if (a.Compare(b) <= 0 && b.Compare(c) <= 0) {
          EXPECT_LE(a.Compare(c), 0)
              << a.ToString() << " " << b.ToString() << " " << c.ToString();
        }
      }
    }
  }
}

TEST(ValueOrder, HashConsistentWithEquality) {
  auto values = SampleValues();
  for (const Value& a : values) {
    for (const Value& b : values) {
      if (a == b) EXPECT_EQ(a.Hash(), b.Hash());
    }
  }
}

TEST(Schema, ColumnIndexFindsFirst) {
  Schema s = Schema::FromNames({"a", "b", "c"});
  EXPECT_EQ(s.ColumnIndex("b"), 1u);
  EXPECT_EQ(s.ColumnIndex("missing"), std::nullopt);
}

TEST(Schema, ConcatAndProject) {
  Schema s1 = Schema::FromNames({"a", "b"});
  Schema s2 = Schema::FromNames({"c"});
  Schema both = s1.Concat(s2);
  EXPECT_EQ(both.size(), 3u);
  EXPECT_EQ(both.column(2).name, "c");
  Schema proj = both.Project({2, 0});
  EXPECT_EQ(proj.column(0).name, "c");
  EXPECT_EQ(proj.column(1).name, "a");
}

TEST(Schema, ToStringIncludesTypes) {
  Schema s({Column{"id", ValueType::kInt}, Column{"name", ValueType::kNull}});
  EXPECT_EQ(s.ToString(), "(id:INT, name)");
}

TEST(Tuple, HashDistinguishesOrder) {
  Tuple t1{Value::Int(1), Value::Int(2)};
  Tuple t2{Value::Int(2), Value::Int(1)};
  EXPECT_NE(TupleHash()(t1), TupleHash()(t2));
}

TEST(Tuple, ToStringRendersValues) {
  Tuple t{Value::Int(1), Value::String("x"), Value::Null()};
  EXPECT_EQ(TupleToString(t), "(1, 'x', NULL)");
}

}  // namespace
}  // namespace braid::rel
