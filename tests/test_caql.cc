// Unit tests for CAQL query representation, parsing, and canonicalization.

#include <gtest/gtest.h>

#include "caql/caql_query.h"

namespace braid::caql {
namespace {

CaqlQuery Q(const std::string& text) {
  auto r = ParseCaql(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.value();
}

TEST(Caql, ParseBasic) {
  CaqlQuery q = Q("d2(X, c6) :- b2(X, Z) & b3(Z, c2, c6)");
  EXPECT_EQ(q.name, "d2");
  EXPECT_EQ(q.head_args.size(), 2u);
  EXPECT_EQ(q.body.size(), 2u);
  EXPECT_EQ(q.ToString(), "d2(X, c6) :- b2(X, Z) & b3(Z, c2, c6)");
}

TEST(Caql, CommaAndAmpersandEquivalent) {
  EXPECT_EQ(Q("d(X) :- a(X), b(X)").body, Q("d(X) :- a(X) & b(X)").body);
}

TEST(Caql, AtomClassification) {
  CaqlQuery q = Q("d(X, W) :- b(X, Y) & Y > 3 & plus(X, Y, W)");
  EXPECT_EQ(q.RelationAtoms().size(), 1u);
  EXPECT_EQ(q.ComparisonAtoms().size(), 1u);
  EXPECT_EQ(q.EvaluableAtoms().size(), 1u);
}

TEST(Caql, EvaluablePredicateArityMatters) {
  EXPECT_TRUE(IsEvaluablePredicate("plus", 3));
  EXPECT_FALSE(IsEvaluablePredicate("plus", 2));
  EXPECT_TRUE(IsEvaluablePredicate("abs", 2));
  EXPECT_FALSE(IsEvaluablePredicate("abs", 3));
  EXPECT_FALSE(IsEvaluablePredicate("b1", 3));
}

TEST(Caql, AllVariablesHeadFirst) {
  CaqlQuery q = Q("d(Y, X) :- b(X, Y, Z)");
  EXPECT_EQ(q.AllVariables(), (std::vector<std::string>{"Y", "X", "Z"}));
  EXPECT_EQ(q.HeadVariables(), (std::vector<std::string>{"Y", "X"}));
}

TEST(Caql, CanonicalKeyInvariantUnderRenaming) {
  CaqlQuery a = Q("d(X, Y) :- b(X, Z) & c(Z, Y)");
  CaqlQuery b = Q("d(P, Q) :- b(P, R) & c(R, Q)");
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
}

TEST(Caql, CanonicalKeyDistinguishesConstants) {
  EXPECT_NE(Q("d(X) :- b(X, 1)").CanonicalKey(),
            Q("d(X) :- b(X, 2)").CanonicalKey());
  EXPECT_NE(Q("d(X) :- b(X, 1)").CanonicalKey(),
            Q("d(X) :- b(X, Y)").CanonicalKey());
}

TEST(Caql, CanonicalKeyDistinguishesRepeatedVariables) {
  EXPECT_NE(Q("d(X) :- b(X, X)").CanonicalKey(),
            Q("d(X) :- b(X, Y)").CanonicalKey());
}

TEST(Caql, SubstituteReplacesEverywhere) {
  CaqlQuery q = Q("d(X, Y) :- b(X, Z) & c(Z, Y)");
  logic::Substitution s;
  s.Bind("Y", logic::Term::Int(9));
  CaqlQuery out = q.Substitute(s);
  EXPECT_EQ(out.ToString(), "d(X, 9) :- b(X, Z) & c(Z, 9)");
}

TEST(Caql, ValidateRejectsUnsafeHead) {
  CaqlQuery q;
  q.name = "bad";
  q.head_args = {logic::Term::Var("X")};
  q.body = {logic::Atom("b", {logic::Term::Var("Y")})};
  EXPECT_EQ(q.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(Caql, ValidateAcceptsGroundBuiltinOnlyBody) {
  auto r = ParseCaql("check() :- 1 < 2");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(Caql, ValidateRejectsNonGroundBuiltinOnlyBody) {
  CaqlQuery q;
  q.name = "bad";
  q.body = {logic::Atom("<", {logic::Term::Var("X"), logic::Term::Int(2)})};
  EXPECT_EQ(q.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(Caql, ParseAddsTrailingDot) {
  EXPECT_TRUE(ParseCaql("d(X) :- b(X)").ok());
  EXPECT_TRUE(ParseCaql("d(X) :- b(X).").ok());
  EXPECT_TRUE(ParseCaql("  d(X) :- b(X).  ").ok());
}

}  // namespace
}  // namespace braid::caql
