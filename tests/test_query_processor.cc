// Unit tests for the CMS Query Processor: conjunctive evaluation over
// binding relations, evaluable functions, aggregation support, and the
// transitive-closure fixed-point operator.

#include <gtest/gtest.h>

#include "caql/caql_query.h"
#include "cms/query_processor.h"
#include "common/rng.h"

namespace braid::cms {
namespace {

using caql::ParseCaql;
using rel::Tuple;
using rel::Value;

std::shared_ptr<rel::Relation> MakeRel(const std::string& name,
                                       const std::vector<std::string>& cols,
                                       std::vector<Tuple> tuples) {
  auto r = std::make_shared<rel::Relation>(name,
                                           rel::Schema::FromNames(cols));
  for (Tuple& t : tuples) r->AppendUnchecked(std::move(t));
  return r;
}

class QueryProcessorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sources_["b1"] = MakeRel("b1", {"a", "b"},
                             {{Value::Int(1), Value::Int(10)},
                              {Value::Int(2), Value::Int(20)},
                              {Value::Int(3), Value::Int(30)}});
    sources_["b2"] = MakeRel("b2", {"a", "b"},
                             {{Value::Int(10), Value::Int(100)},
                              {Value::Int(20), Value::Int(200)},
                              {Value::Int(20), Value::Int(201)}});
  }

  QueryProcessor::AtomResolver Resolver() {
    return [this](const logic::Atom& atom)
               -> std::shared_ptr<const rel::Relation> {
      auto it = sources_.find(atom.predicate);
      return it == sources_.end() ? nullptr : it->second;
    };
  }

  rel::Relation Eval(const std::string& text) {
    auto q = ParseCaql(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    auto out = QueryProcessor::Evaluate(q.value(), Resolver(), &work_);
    EXPECT_TRUE(out.ok()) << text << ": " << out.status().ToString();
    return out.ok() ? out.value() : rel::Relation();
  }

  std::map<std::string, std::shared_ptr<rel::Relation>> sources_;
  LocalWork work_;
};

TEST_F(QueryProcessorTest, SingleAtomScan) {
  rel::Relation out = Eval("q(X, Y) :- b1(X, Y)");
  EXPECT_EQ(out.NumTuples(), 3u);
  EXPECT_EQ(out.schema().column(0).name, "X");
}

TEST_F(QueryProcessorTest, ConstantSelection) {
  rel::Relation out = Eval("q(Y) :- b1(2, Y)");
  ASSERT_EQ(out.NumTuples(), 1u);
  EXPECT_EQ(out.tuple(0)[0], Value::Int(20));
}

TEST_F(QueryProcessorTest, JoinAcrossAtoms) {
  rel::Relation out = Eval("q(X, Z) :- b1(X, Y) & b2(Y, Z)");
  EXPECT_EQ(out.NumTuples(), 3u);  // (1,100), (2,200), (2,201)
}

TEST_F(QueryProcessorTest, ComparisonFilters) {
  rel::Relation out = Eval("q(X) :- b1(X, Y) & Y > 15");
  EXPECT_EQ(out.NumTuples(), 2u);
}

TEST_F(QueryProcessorTest, ComparisonBetweenVariables) {
  sources_["p"] = MakeRel("p", {"a", "b"},
                          {{Value::Int(1), Value::Int(2)},
                           {Value::Int(5), Value::Int(3)}});
  rel::Relation out = Eval("q(X, Y) :- p(X, Y) & X < Y");
  ASSERT_EQ(out.NumTuples(), 1u);
  EXPECT_EQ(out.tuple(0)[0], Value::Int(1));
}

TEST_F(QueryProcessorTest, RepeatedVariableInAtom) {
  sources_["s"] = MakeRel("s", {"a", "b"},
                          {{Value::Int(4), Value::Int(4)},
                           {Value::Int(4), Value::Int(5)}});
  rel::Relation out = Eval("q(X) :- s(X, X)");
  ASSERT_EQ(out.NumTuples(), 1u);
  EXPECT_EQ(out.tuple(0)[0], Value::Int(4));
}

TEST_F(QueryProcessorTest, ConstantInHead) {
  rel::Relation out = Eval("q(X, 99) :- b1(X, 10)");
  ASSERT_EQ(out.NumTuples(), 1u);
  EXPECT_EQ(out.tuple(0)[1], Value::Int(99));
}

TEST_F(QueryProcessorTest, EvaluableBindsNewVariable) {
  rel::Relation out = Eval("q(X, W) :- b1(X, Y) & plus(Y, 1, W)");
  ASSERT_EQ(out.NumTuples(), 3u);
  EXPECT_EQ(out.tuple(0)[1], Value::Int(11));
}

TEST_F(QueryProcessorTest, EvaluableAsFilter) {
  rel::Relation out = Eval("q(X) :- b1(X, Y) & times(X, 10, Y)");
  EXPECT_EQ(out.NumTuples(), 3u);  // all rows satisfy y = 10x
  rel::Relation none = Eval("q(X) :- b1(X, Y) & times(X, 11, Y)");
  EXPECT_EQ(none.NumTuples(), 0u);
}

TEST_F(QueryProcessorTest, ChainedEvaluables) {
  rel::Relation out = Eval(
      "q(X, V) :- b1(X, Y) & plus(Y, 1, W) & times(W, 2, V)");
  ASSERT_EQ(out.NumTuples(), 3u);
  EXPECT_EQ(out.tuple(0)[1], Value::Int(22));
}

TEST_F(QueryProcessorTest, ComparisonOnEvaluableOutput) {
  rel::Relation out = Eval(
      "q(X) :- b1(X, Y) & plus(Y, 5, W) & W > 20");
  EXPECT_EQ(out.NumTuples(), 2u);  // 15, 25, 35 → 25 and 35
}

TEST_F(QueryProcessorTest, DivisionByZeroError) {
  auto q = ParseCaql("q(W) :- b1(X, Y) & div(Y, 0, W)");
  auto out = QueryProcessor::Evaluate(q.value(), Resolver(), &work_);
  EXPECT_FALSE(out.ok());
}

TEST_F(QueryProcessorTest, MissingSourceIsNotFound) {
  auto q = ParseCaql("q(X) :- zz(X)");
  auto out = QueryProcessor::Evaluate(q.value(), Resolver(), &work_);
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST_F(QueryProcessorTest, GroundBuiltinOnlyQuery) {
  auto q = ParseCaql("check() :- 1 < 2");
  auto out = QueryProcessor::Evaluate(q.value(), Resolver(), &work_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumTuples(), 1u);  // succeeds once
  auto q2 = ParseCaql("check() :- 2 < 1");
  auto out2 = QueryProcessor::Evaluate(q2.value(), Resolver(), &work_);
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out2->NumTuples(), 0u);
}

TEST_F(QueryProcessorTest, WorkCounterGrowsWithData) {
  LocalWork small_work, big_work;
  auto q = ParseCaql("q(X, Y) :- b1(X, Y)").value();
  ASSERT_TRUE(QueryProcessor::Evaluate(q, Resolver(), &small_work).ok());
  std::vector<Tuple> many;
  for (int i = 0; i < 500; ++i) {
    many.push_back({Value::Int(i), Value::Int(i)});
  }
  sources_["b1"] = MakeRel("b1", {"a", "b"}, std::move(many));
  ASSERT_TRUE(QueryProcessor::Evaluate(q, Resolver(), &big_work).ok());
  EXPECT_GT(big_work.tuples_processed, small_work.tuples_processed);
}

TEST(NaturalJoin, SharedColumnsJoined) {
  auto l = MakeRel("l", {"X", "Y"}, {{Value::Int(1), Value::Int(2)},
                                     {Value::Int(3), Value::Int(4)}});
  auto r = MakeRel("r", {"Y", "Z"}, {{Value::Int(2), Value::Int(5)}});
  LocalWork work;
  rel::Relation out = QueryProcessor::NaturalJoin(*l, *r, &work);
  ASSERT_EQ(out.NumTuples(), 1u);
  EXPECT_EQ(out.schema().size(), 3u);  // X, Y, Z — no duplicate Y
  EXPECT_EQ(out.tuple(0), (Tuple{Value::Int(1), Value::Int(2),
                                 Value::Int(5)}));
}

TEST(NaturalJoin, NoSharedColumnsIsCrossProduct) {
  auto l = MakeRel("l", {"X"}, {{Value::Int(1)}, {Value::Int(2)}});
  auto r = MakeRel("r", {"Y"}, {{Value::Int(3)}});
  LocalWork work;
  rel::Relation out = QueryProcessor::NaturalJoin(*l, *r, &work);
  EXPECT_EQ(out.NumTuples(), 2u);
}

TEST(TransitiveClosure, ChainGraph) {
  auto edges = MakeRel("e", {"s", "d"},
                       {{Value::Int(1), Value::Int(2)},
                        {Value::Int(2), Value::Int(3)},
                        {Value::Int(3), Value::Int(4)}});
  LocalWork work;
  rel::Relation tc = QueryProcessor::TransitiveClosure(*edges, 0, 1, &work);
  EXPECT_EQ(tc.NumTuples(), 6u);  // 12 13 14 23 24 34
}

TEST(TransitiveClosure, HandlesCycles) {
  auto edges = MakeRel("e", {"s", "d"},
                       {{Value::Int(1), Value::Int(2)},
                        {Value::Int(2), Value::Int(1)}});
  LocalWork work;
  rel::Relation tc = QueryProcessor::TransitiveClosure(*edges, 0, 1, &work);
  EXPECT_EQ(tc.NumTuples(), 4u);  // 12 21 11 22
}

TEST(TransitiveClosure, EmptyEdges) {
  auto edges = MakeRel("e", {"s", "d"}, {});
  LocalWork work;
  EXPECT_EQ(QueryProcessor::TransitiveClosure(*edges, 0, 1, &work).NumTuples(),
            0u);
}

TEST(TransitiveClosure, MatchesNaiveClosureOnRandomGraph) {
  Rng rng(5);
  std::vector<Tuple> e;
  for (int i = 0; i < 60; ++i) {
    e.push_back({Value::Int(rng.Uniform(0, 14)),
                 Value::Int(rng.Uniform(0, 14))});
  }
  auto edges = MakeRel("e", {"s", "d"}, std::move(e));
  LocalWork work;
  rel::Relation tc = QueryProcessor::TransitiveClosure(*edges, 0, 1, &work);

  // Reference: Floyd-Warshall reachability.
  bool reach[15][15] = {};
  for (const Tuple& t : edges->tuples()) {
    reach[t[0].AsInt()][t[1].AsInt()] = true;
  }
  for (int k = 0; k < 15; ++k) {
    for (int i = 0; i < 15; ++i) {
      for (int j = 0; j < 15; ++j) {
        reach[i][j] = reach[i][j] || (reach[i][k] && reach[k][j]);
      }
    }
  }
  size_t expected = 0;
  for (int i = 0; i < 15; ++i) {
    for (int j = 0; j < 15; ++j) {
      if (reach[i][j]) ++expected;
    }
  }
  EXPECT_EQ(tc.NumTuples(), expected);
}

}  // namespace
}  // namespace braid::cms
