// Unit tests for the remote DBMS simulator: catalog, statistics, executor,
// and cost model.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dbms/remote_dbms.h"
#include "relational/operators.h"

namespace braid::dbms {
namespace {

using rel::Tuple;
using rel::Value;

Database TwoTableDb() {
  Database db;
  rel::Relation r("r", rel::Schema::FromNames({"a", "b"}));
  r.AppendUnchecked({Value::Int(1), Value::Int(10)});
  r.AppendUnchecked({Value::Int(2), Value::Int(20)});
  r.AppendUnchecked({Value::Int(3), Value::Int(20)});
  rel::Relation s("s", rel::Schema::FromNames({"b", "c"}));
  s.AppendUnchecked({Value::Int(10), Value::String("x")});
  s.AppendUnchecked({Value::Int(20), Value::String("y")});
  BRAID_CHECK_OK(db.AddTable(std::move(r)));
  BRAID_CHECK_OK(db.AddTable(std::move(s)));
  return db;
}

TEST(Database, CatalogAndStats) {
  Database db = TwoTableDb();
  EXPECT_TRUE(db.HasTable("r"));
  EXPECT_FALSE(db.HasTable("t"));
  const TableStats* stats = db.GetStats("r");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->cardinality, 3u);
  EXPECT_EQ(stats->distinct[0], 3u);
  EXPECT_EQ(stats->distinct[1], 2u);
  EXPECT_DOUBLE_EQ(stats->EqSelectivity(1), 0.5);
  EXPECT_EQ(db.ColumnIndex("r", "b"), 1u);
  EXPECT_EQ(db.ColumnIndex("r", "zz"), std::nullopt);
  EXPECT_EQ(db.TotalTuples(), 5u);
}

TEST(Database, DuplicateTableRejected) {
  Database db = TwoTableDb();
  rel::Relation dup("r", rel::Schema::FromNames({"a"}));
  EXPECT_EQ(db.AddTable(std::move(dup)).code(), StatusCode::kAlreadyExists);
}

TEST(Executor, SingleTableSelection) {
  Database db = TwoTableDb();
  Executor exec(&db);
  SqlQuery q;
  q.from = {"r"};
  q.where.push_back(Condition{ColRef{0, 1}, rel::CompareOp::kEq, false,
                              ColRef{}, Value::Int(20)});
  WorkCounters work;
  auto out = exec.Execute(q, &work);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->NumTuples(), 2u);
  EXPECT_EQ(work.tuples_scanned, 3u);
}

TEST(Executor, EquiJoinWithProjection) {
  Database db = TwoTableDb();
  Executor exec(&db);
  SqlQuery q;
  q.from = {"r", "s"};
  q.where.push_back(Condition{ColRef{0, 1}, rel::CompareOp::kEq, true,
                              ColRef{1, 0}, Value()});
  q.select = {ColRef{0, 0}, ColRef{1, 1}};
  auto out = exec.Execute(q, nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumTuples(), 3u);  // (1,x), (2,y), (3,y)
  EXPECT_EQ(out->schema().size(), 2u);
}

TEST(Executor, SelfJoin) {
  Database db = TwoTableDb();
  Executor exec(&db);
  SqlQuery q;  // pairs of r rows sharing b
  q.from = {"r", "r"};
  q.where.push_back(Condition{ColRef{0, 1}, rel::CompareOp::kEq, true,
                              ColRef{1, 1}, Value()});
  q.where.push_back(Condition{ColRef{0, 0}, rel::CompareOp::kNe, true,
                              ColRef{1, 0}, Value()});
  auto out = exec.Execute(q, nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumTuples(), 2u);  // (2,3) and (3,2) on b=20
}

TEST(Executor, CrossProductWhenDisconnected) {
  Database db = TwoTableDb();
  Executor exec(&db);
  SqlQuery q;
  q.from = {"r", "s"};
  auto out = exec.Execute(q, nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumTuples(), 6u);
}

TEST(Executor, Distinct) {
  Database db = TwoTableDb();
  Executor exec(&db);
  SqlQuery q;
  q.from = {"r"};
  q.select = {ColRef{0, 1}};
  q.distinct = true;
  auto out = exec.Execute(q, nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumTuples(), 2u);
}

TEST(Executor, ErrorsOnUnknownTableOrColumn) {
  Database db = TwoTableDb();
  Executor exec(&db);
  SqlQuery q;
  q.from = {"missing"};
  EXPECT_EQ(exec.Execute(q, nullptr).status().code(), StatusCode::kNotFound);

  SqlQuery q2;
  q2.from = {"r"};
  q2.select = {ColRef{0, 5}};
  EXPECT_EQ(exec.Execute(q2, nullptr).status().code(),
            StatusCode::kInvalidArgument);

  SqlQuery q3;
  EXPECT_EQ(exec.Execute(q3, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SqlQuery, ToStringRendering) {
  SqlQuery q;
  q.from = {"r", "s"};
  q.select = {ColRef{0, 0}};
  q.where.push_back(Condition{ColRef{0, 1}, rel::CompareOp::kEq, true,
                              ColRef{1, 0}, Value()});
  q.where.push_back(Condition{ColRef{1, 1}, rel::CompareOp::kGt, false,
                              ColRef{}, Value::Int(5)});
  EXPECT_EQ(q.ToString(),
            "SELECT t0.c0 FROM r t0, s t1 WHERE t0.c1 = t1.c0 AND t1.c1 > 5");
}

TEST(RemoteDbms, ChargesLatencyAndTransfer) {
  NetworkModel net;
  net.msg_latency_ms = 10;
  net.per_tuple_ms = 1;
  net.buffer_tuples = 2;
  net.pipelining = false;
  RemoteDbms remote(TwoTableDb(), net, DbmsCostModel{});
  SqlQuery q;
  q.from = {"r"};
  auto result = remote.Execute(q);
  ASSERT_TRUE(result.ok());
  // 3 tuples → 2 buffers + 1 request = 3 messages.
  EXPECT_EQ(result->cost.messages, 3u);
  EXPECT_EQ(result->cost.tuples_shipped, 3u);
  EXPECT_DOUBLE_EQ(result->cost.transfer_ms, 3 * 10 + 3 * 1);
  EXPECT_GT(result->cost.server_ms, 0);
  EXPECT_DOUBLE_EQ(result->cost.total_ms,
                   result->cost.server_ms + result->cost.transfer_ms);
}

TEST(RemoteDbms, PipeliningOverlapsServerAndTransfer) {
  NetworkModel net;
  net.pipelining = true;
  RemoteDbms remote(TwoTableDb(), net, DbmsCostModel{});
  SqlQuery q;
  q.from = {"r"};
  auto result = remote.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(
      result->cost.total_ms,
      std::max(result->cost.server_ms, result->cost.transfer_ms) +
          net.msg_latency_ms);
}

TEST(RemoteDbms, StatsAccumulate) {
  RemoteDbms remote(TwoTableDb());
  SqlQuery q;
  q.from = {"r"};
  ASSERT_TRUE(remote.Execute(q).ok());
  ASSERT_TRUE(remote.Execute(q).ok());
  EXPECT_EQ(remote.stats().queries, 2u);
  EXPECT_EQ(remote.stats().tuples_shipped, 6u);
  remote.ResetStats();
  EXPECT_EQ(remote.stats().queries, 0u);
}

TEST(RemoteDbms, CardinalityEstimateInRightBallpark) {
  RemoteDbms remote(TwoTableDb());
  SqlQuery q;
  q.from = {"r"};
  q.where.push_back(Condition{ColRef{0, 0}, rel::CompareOp::kEq, false,
                              ColRef{}, Value::Int(1)});
  // 3 rows × 1/3 selectivity = 1.
  EXPECT_NEAR(remote.EstimateCardinality(q), 1.0, 0.01);
}

TEST(RemoteDbms, EmptyResultStillCostsARoundTrip) {
  RemoteDbms remote(TwoTableDb());
  SqlQuery q;
  q.from = {"r"};
  q.where.push_back(Condition{ColRef{0, 0}, rel::CompareOp::kEq, false,
                              ColRef{}, Value::Int(999)});
  auto result = remote.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost.tuples_shipped, 0u);
  EXPECT_EQ(result->cost.messages, 2u);  // request + empty reply
  EXPECT_GT(result->cost.total_ms, 0);
}

// Property: executor agrees with a nested-loop reference on random
// two-table equi-join queries.
struct ExecCase {
  size_t rows_a;
  size_t rows_b;
  int64_t domain;
  uint64_t seed;
};

class ExecutorEquivalence : public ::testing::TestWithParam<ExecCase> {};

TEST_P(ExecutorEquivalence, MatchesReferenceJoin) {
  const ExecCase& c = GetParam();
  Rng rng(c.seed);
  Database db;
  rel::Relation a("a", rel::Schema::FromNames({"k", "v"}));
  for (size_t i = 0; i < c.rows_a; ++i) {
    a.AppendUnchecked({Value::Int(rng.Uniform(0, c.domain - 1)),
                       Value::Int(rng.Uniform(0, 50))});
  }
  rel::Relation b("b", rel::Schema::FromNames({"k", "w"}));
  for (size_t i = 0; i < c.rows_b; ++i) {
    b.AppendUnchecked({Value::Int(rng.Uniform(0, c.domain - 1)),
                       Value::Int(rng.Uniform(0, 50))});
  }
  rel::Relation ref = rel::NestedLoopJoin(
      a, b, *rel::Predicate::ColumnColumn(0, rel::CompareOp::kEq, 2));
  BRAID_CHECK_OK(db.AddTable(std::move(a)));
  BRAID_CHECK_OK(db.AddTable(std::move(b)));
  Executor exec(&db);
  SqlQuery q;
  q.from = {"a", "b"};
  q.where.push_back(Condition{ColRef{0, 0}, rel::CompareOp::kEq, true,
                              ColRef{1, 0}, Value()});
  auto out = exec.Execute(q, nullptr);
  ASSERT_TRUE(out.ok());
  std::multiset<std::string> expected, actual;
  for (const Tuple& t : ref.tuples()) expected.insert(rel::TupleToString(t));
  for (const Tuple& t : out->tuples()) actual.insert(rel::TupleToString(t));
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExecutorEquivalence,
    ::testing::Values(ExecCase{0, 5, 3, 1}, ExecCase{5, 0, 3, 2},
                      ExecCase{10, 10, 2, 3}, ExecCase{40, 25, 8, 4},
                      ExecCase{100, 80, 15, 5}, ExecCase{30, 30, 1, 6}));

}  // namespace
}  // namespace braid::dbms
