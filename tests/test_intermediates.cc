// Intermediate-result caching (DESIGN.md §12): the cost-based admission
// gate, the derived budget slice, eviction ordering (derived before
// advised), end-to-end stage reuse through subsumption, and the
// concurrent multi-session path (run under TSan in CI).

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "caql/caql_query.h"
#include "cms/cache_manager.h"
#include "cms/cms.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "workload/generators.h"

namespace braid::cms {
namespace {

using caql::CaqlQuery;
using caql::ParseCaql;

CaqlQuery Q(const std::string& text) {
  auto r = ParseCaql(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.value();
}

CacheElementPtr MakeElement(const std::string& id, const std::string& def,
                            size_t rows, bool derived = false) {
  auto ext = std::make_shared<rel::Relation>(
      id, rel::Schema::FromNames({"x", "y"}));
  for (size_t i = 0; i < rows; ++i) {
    ext->AppendUnchecked({rel::Value::Int(static_cast<int64_t>(i)),
                          rel::Value::Int(static_cast<int64_t>(i * 2))});
  }
  auto e = std::make_shared<CacheElement>(id, Q(def), ext);
  e->set_derived(derived);
  return e;
}

// ---------------------------------------------------------------------------
// The admission gate in isolation.

TEST(IntermediateGate, OversizedRejected) {
  CacheManager mgr(1 << 20, 4, /*intermediate_budget_fraction=*/0.25);
  ASSERT_EQ(mgr.intermediate_budget_bytes(), (1u << 20) / 4);
  // Far over the slice; enormous benefit must not rescue it.
  auto v = mgr.JudgeIntermediate(mgr.intermediate_budget_bytes() + 1,
                                 /*tuples=*/10, /*recompute_ms=*/1e6,
                                 /*predicted_distance=*/size_t{1},
                                 /*local_per_tuple_ms=*/0.01);
  EXPECT_FALSE(v.admit);
  EXPECT_STREQ(v.reason, "oversized");
  EXPECT_EQ(mgr.stats().intermediates_rejected, 1u);
  EXPECT_EQ(mgr.stats().intermediates_admitted, 0u);
}

TEST(IntermediateGate, NeverReusedCheapStageRejected) {
  CacheManager mgr(1 << 20, 4);
  // Recomputation costs exactly one scan of the result: with no reuse
  // prediction the benefit is halved, so keeping it can never pay off.
  auto v = mgr.JudgeIntermediate(/*bytes=*/1024, /*tuples=*/100,
                                 /*recompute_ms=*/1.0,
                                 /*predicted_distance=*/std::nullopt,
                                 /*local_per_tuple_ms=*/0.01);
  EXPECT_FALSE(v.admit);
  EXPECT_STREQ(v.reason, "low-benefit");
  EXPECT_DOUBLE_EQ(v.cost_ms, 1.0);
  EXPECT_DOUBLE_EQ(v.benefit_ms, 0.5);
  EXPECT_EQ(mgr.stats().intermediates_rejected, 1u);
}

TEST(IntermediateGate, ExpensiveReusableStageAdmitted) {
  CacheManager mgr(1 << 20, 4);
  // Ten scans' worth of recomputation, predicted back within the horizon.
  auto v = mgr.JudgeIntermediate(/*bytes=*/1024, /*tuples=*/100,
                                 /*recompute_ms=*/10.0,
                                 /*predicted_distance=*/size_t{2},
                                 /*local_per_tuple_ms=*/0.01);
  EXPECT_TRUE(v.admit);
  EXPECT_STREQ(v.reason, "admit");
  EXPECT_DOUBLE_EQ(v.benefit_ms, 10.0);  // full reuse credit inside horizon
  EXPECT_EQ(mgr.stats().intermediates_admitted, 1u);
  EXPECT_EQ(mgr.stats().intermediates_rejected, 0u);
}

TEST(IntermediateGate, PredictedReuseDecaysBeyondHorizon) {
  CacheManager mgr(1 << 20, /*replacement_horizon=*/4);
  auto near = mgr.JudgeIntermediate(1024, 100, 10.0, size_t{4}, 0.01);
  auto far = mgr.JudgeIntermediate(1024, 100, 10.0, size_t{9}, 0.01);
  EXPECT_TRUE(near.admit);
  EXPECT_LT(far.benefit_ms, near.benefit_ms);
  // (horizon+1)/(d+1) = 5/10 at distance 9.
  EXPECT_DOUBLE_EQ(far.benefit_ms, 5.0);
}

// ---------------------------------------------------------------------------
// The derived budget slice and eviction ordering.

TEST(IntermediateSlice, DerivedBytesStayWithinSlice) {
  const size_t element_bytes =
      MakeElement("probe", "p(X, Y) :- b(X, Y)", 32, true)->ByteSize();
  // Slice fits ~2.5 derived elements; the whole budget fits 10.
  CacheManager mgr(element_bytes * 10, 4, /*fraction=*/0.25);
  for (int i = 0; i < 6; ++i) {
    auto e = MakeElement(StrCat("D", i), StrCat("d", i, "(X, Y) :- b(X, Y)"),
                         32, /*derived=*/true);
    EXPECT_TRUE(mgr.InsertIntermediate(std::move(e)));
    mgr.Tick();
    EXPECT_LE(mgr.DerivedBytes(), mgr.intermediate_budget_bytes());
  }
  // Six inserts into a 2-element slice: at least four derived evictions,
  // all counted on both the derived and the global eviction counters.
  EXPECT_GE(mgr.stats().intermediates_evicted, 4u);
  EXPECT_GE(mgr.stats().evictions, mgr.stats().intermediates_evicted);
}

TEST(IntermediateEviction, DerivedEvictedBeforeAdvisedElements) {
  const size_t element_bytes =
      MakeElement("probe", "p(X, Y) :- b(X, Y)", 32)->ByteSize();
  CacheManager mgr(element_bytes * 3 + element_bytes / 2, 4, /*fraction=*/1.0);
  // The advisor protects the advised view (needed immediately) and has no
  // prediction for anything else.
  mgr.set_replacement_advisor([](const CacheElement& e) {
    return e.id() == "advised" ? std::optional<size_t>(0) : std::nullopt;
  });

  ASSERT_TRUE(mgr.Insert(MakeElement("advised", "a(X, Y) :- b1(X, Y)", 32)));
  mgr.Tick();
  ASSERT_TRUE(mgr.InsertIntermediate(
      MakeElement("derived", "d(X, Y) :- b2(X, Y)", 32, /*derived=*/true)));
  mgr.Tick();
  // Make the derived element the most recently used: plain LRU would now
  // pick `advised` as the victim; the derived-first rank must not.
  mgr.Touch("derived");
  mgr.Tick();
  ASSERT_TRUE(mgr.Insert(MakeElement("E3", "c(X, Y) :- b3(X, Y)", 32)));
  ASSERT_TRUE(mgr.Insert(MakeElement("E4", "e(X, Y) :- b4(X, Y)", 32)));

  EXPECT_EQ(mgr.model().Find("derived"), nullptr);
  EXPECT_NE(mgr.model().Find("advised"), nullptr);
  EXPECT_GE(mgr.stats().intermediates_evicted, 1u);
}

// ---------------------------------------------------------------------------
// End to end through the CMS: the bench_intermediates shared-core shape.

struct GenealogyCms {
  explicit GenealogyCms(bool intermediates) {
    workload::GenealogyParams params;
    params.people = 300;
    remote = std::make_unique<dbms::RemoteDbms>(
        workload::MakeGenealogyDatabase(params), dbms::NetworkModel{},
        dbms::DbmsCostModel{});
    CmsConfig config;
    config.enable_intermediates = intermediates;
    config.enable_advice = false;
    config.enable_prefetch = false;
    config.enable_generalization = false;
    config.enable_parallel = false;  // deterministic modeled times
    cms = std::make_unique<Cms>(remote.get(), config);
  }

  double Ask(const std::string& text) {
    auto a = cms->Query(Q(text));
    EXPECT_TRUE(a.ok()) << text << ": " << a.status().ToString();
    return a.ok() ? a->response_ms : 0;
  }

  // Warm base relations, then evaluate the expensive ancestor-chain core
  // once; its head projects the interface variable G away, so only a
  // derived join stage (which keeps G) can serve the followers.
  void WarmAndSeed() {
    Ask("warm_parent(C, P) :- parent(C, P)");
    Ask("warm_person(I, A, C) :- person(I, A, C)");
    Ask("seed(X) :- parent(X, P) & parent(P, G) & person(G, A, C) & A >= 97");
  }

  size_t DerivedElements() const {
    size_t n = 0;
    for (const auto& [id, e] : cms->cache().model().elements()) {
      if (e->is_derived()) ++n;
    }
    return n;
  }

  std::unique_ptr<dbms::RemoteDbms> remote;
  std::unique_ptr<Cms> cms;
};

TEST(CmsIntermediates, SeedStageServesFollowerWithoutRemoteWork) {
  GenealogyCms on(/*intermediates=*/true);
  on.WarmAndSeed();
  EXPECT_GE(on.DerivedElements(), 1u);
  ASSERT_EQ(on.cms->cache().model().CheckCatalogConsistency(), "");

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const uint64_t hits_before = reg.counter("intermediate.hits").value();
  const size_t remote_before = on.remote->stats().queries;
  const double on_ms =
      on.Ask("t0(X, G) :- parent(X, P) & parent(P, G) & person(G, A, C)"
             " & A >= 97 & person(X, 0, CX)");
  // Quiescent CMS (no prefetch, no sessions): the follower must answer
  // from cache alone, through the seed's derived join stage.
  EXPECT_EQ(on.remote->stats().queries, remote_before);
  EXPECT_GE(reg.counter("intermediate.hits").value(), hits_before + 1);

  // Same follower with the gate off recomputes the chain from the warm
  // base relations; modeled times are deterministic, so the reuse win is a
  // hard bound, not a flaky timing assertion.
  GenealogyCms off(/*intermediates=*/false);
  off.WarmAndSeed();
  EXPECT_EQ(off.DerivedElements(), 0u);
  const double off_ms =
      off.Ask("t0(X, G) :- parent(X, P) & parent(P, G) & person(G, A, C)"
              " & A >= 97 & person(X, 0, CX)");
  EXPECT_GT(off_ms, on_ms * 1.5);
}

TEST(CmsIntermediates, DisabledConfigAdmitsNothing) {
  GenealogyCms off(/*intermediates=*/false);
  off.WarmAndSeed();
  EXPECT_EQ(off.DerivedElements(), 0u);
  EXPECT_EQ(off.cms->cache().stats().intermediates_admitted, 0u);
  EXPECT_EQ(off.cms->cache().stats().intermediates_rejected, 0u);
}

// Regression (difftest seed 92): a stage bound from a cached element whose
// definition carries its own comparison was offered with only the covered
// atoms — claiming all of b(A, A) while actually holding b(A, A) & A < 7 —
// and a later unrestricted query served from it lost rows. The stage view
// must carry the element's comparisons rewritten into query variables.
TEST(CmsIntermediates, ElementSourceComparisonsCarriedIntoStageView) {
  dbms::Database db;
  rel::Relation b("b", rel::Schema::FromNames({"x", "y"}));
  b.AppendUnchecked({rel::Value::Int(5), rel::Value::Int(5)});
  b.AppendUnchecked({rel::Value::Int(9), rel::Value::Int(9)});
  b.AppendUnchecked({rel::Value::Int(1), rel::Value::Int(2)});
  rel::Relation c("c", rel::Schema::FromNames({"x", "z"}));
  for (int i = 0; i < 12; ++i) {
    c.AppendUnchecked({rel::Value::Int(i), rel::Value::Int(i * 3)});
  }
  BRAID_CHECK_OK(db.AddTable(std::move(b)));
  BRAID_CHECK_OK(db.AddTable(std::move(c)));
  dbms::RemoteDbms remote(std::move(db));
  CmsConfig config;
  config.enable_prefetch = false;
  Cms cms(&remote, config);

  // Cache the restricted view, then a join whose b-atom it subsumes (the
  // query's X < 6 implies the element's X < 7, so the match is legal and
  // the bind stage holds b(X, X) & X < 7 — not all of b(X, X)).
  ASSERT_TRUE(cms.Query(Q("w(X, Y) :- b(X, Y) & X < 7")).ok());
  ASSERT_TRUE(cms.Query(Q("j(X, Z) :- b(X, X) & c(X, Z) & X < 6")).ok());

  // The unrestricted self-join must still see (5,5) AND (9,9): a derived
  // stage claiming plain b(X, X) would drop the 9.
  auto a = cms.Query(Q("q(X) :- b(X, X)"));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->relation->NumTuples(), 2u);
}

// ---------------------------------------------------------------------------
// Concurrent sessions racing installs of the same stages (TSan target).

TEST(IntermediatesSessions, ConcurrentSharedCoreQueries) {
  workload::GenealogyParams params;
  params.people = 200;
  dbms::RemoteDbms remote(workload::MakeGenealogyDatabase(params),
                          dbms::NetworkModel{}, dbms::DbmsCostModel{});
  CmsConfig config;
  config.enable_intermediates = true;
  config.enable_advice = false;
  config.enable_generalization = false;
  config.num_threads = 4;
  Cms cms(&remote, config);

  constexpr size_t kSessions = 4;
  constexpr size_t kPerSession = 6;
  std::vector<CmsSession*> sessions;
  for (size_t s = 0; s < kSessions; ++s) sessions.push_back(cms.OpenSession());

  // Every session races the same shared core (identical stage keys, so
  // installs collide on ByCanonicalKey and the derived slice) plus a
  // private selection per query.
  std::vector<std::thread> drivers;
  drivers.reserve(kSessions);
  for (size_t s = 0; s < kSessions; ++s) {
    drivers.emplace_back([&cms, &sessions, s] {
      for (size_t i = 0; i < kPerSession; ++i) {
        CaqlQuery q = Q(StrCat("c", s, "_", i,
                               "(X, G) :- parent(X, P) & parent(P, G)",
                               " & person(G, A, C) & A >= 90",
                               " & person(X, ", (s * kPerSession + i) % 100,
                               ", CX)"));
        auto answer = cms.QueryAsync(*sessions[s], q).get();
        EXPECT_TRUE(answer.ok()) << answer.status().ToString();
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  cms.DrainSessions();
  cms.DrainPrefetches();

  // The catalog/stripe invariant holds over derived elements too, and the
  // derived slice never overflows its budget.
  EXPECT_EQ(cms.cache().model().CheckCatalogConsistency(), "");
  EXPECT_LE(cms.cache().DerivedBytes(),
            cms.cache().intermediate_budget_bytes());
  for (CmsSession* s : sessions) cms.CloseSession(s);
}

}  // namespace
}  // namespace braid::cms
