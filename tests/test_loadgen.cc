// Tests for the load-generation core shared by tools/braid_loadgen and
// bench_sessions (src/testing/load_harness.h): arrival schedules are pure
// functions of their parameters (no wall-clock dependence — the injected
// clock only enters when a replay paces them), the open-loop replay is
// fully deterministic under a FakeLoadClock on a poolless CMS, and the
// bench quantile/JSON helpers behave at the edges the load tool leans on
// (empty samples, single samples, ties, p99.9).

#include <cstdio>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "caql/caql_query.h"
#include "cms/cms.h"
#include "dbms/remote_dbms.h"
#include "relational/relation.h"
#include "relational/value.h"
#include "testing/load_harness.h"

namespace braid::testing {
namespace {

// --- Arrival schedules -------------------------------------------------

TEST(Arrivals, FixedScheduleIsExactlySpaced) {
  ArrivalParams params;
  params.process = ArrivalProcess::kFixed;
  params.rate_qps = 100;  // 10ms apart
  params.count = 5;
  const std::vector<double> arrivals = GenerateArrivals(params);
  ASSERT_EQ(arrivals.size(), 5u);
  for (size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_DOUBLE_EQ(arrivals[i], 10.0 * static_cast<double>(i));
  }
}

TEST(Arrivals, FixedScheduleIgnoresSeed) {
  ArrivalParams a;
  a.process = ArrivalProcess::kFixed;
  a.rate_qps = 250;
  a.count = 16;
  a.seed = 1;
  ArrivalParams b = a;
  b.seed = 99;
  EXPECT_EQ(GenerateArrivals(a), GenerateArrivals(b));
}

TEST(Arrivals, PoissonIsDeterministicPerSeed) {
  ArrivalParams params;
  params.process = ArrivalProcess::kPoisson;
  params.rate_qps = 200;
  params.count = 64;
  params.seed = 7;
  const std::vector<double> first = GenerateArrivals(params);
  const std::vector<double> again = GenerateArrivals(params);
  ASSERT_EQ(first.size(), 64u);
  EXPECT_EQ(first, again);

  params.seed = 8;
  EXPECT_NE(first, GenerateArrivals(params));
}

TEST(Arrivals, PoissonIsNonDecreasingAndPositive) {
  ArrivalParams params;
  params.rate_qps = 500;
  params.count = 256;
  params.seed = 3;
  const std::vector<double> arrivals = GenerateArrivals(params);
  ASSERT_EQ(arrivals.size(), 256u);
  EXPECT_GT(arrivals.front(), 0.0);  // first arrival after one draw
  for (size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i], arrivals[i - 1]);
  }
}

TEST(Arrivals, PoissonMeanGapMatchesRate) {
  ArrivalParams params;
  params.rate_qps = 200;  // mean gap 5ms
  params.count = 4000;
  params.seed = 11;
  const std::vector<double> arrivals = GenerateArrivals(params);
  const double mean_gap = arrivals.back() / static_cast<double>(arrivals.size());
  EXPECT_NEAR(mean_gap, 5.0, 0.5);  // within 10% at n = 4000
}

TEST(Arrivals, EmptyOnZeroCountOrNonPositiveRate) {
  ArrivalParams params;
  params.count = 0;
  EXPECT_TRUE(GenerateArrivals(params).empty());
  params.count = 10;
  params.rate_qps = 0;
  EXPECT_TRUE(GenerateArrivals(params).empty());
  params.rate_qps = -5;
  EXPECT_TRUE(GenerateArrivals(params).empty());
}

// --- Injected clock ----------------------------------------------------

TEST(FakeLoadClock, SleepJumpsForwardNeverBack) {
  FakeLoadClock clock;
  EXPECT_DOUBLE_EQ(clock.NowMs(), 0.0);
  clock.SleepUntilMs(25);
  EXPECT_DOUBLE_EQ(clock.NowMs(), 25.0);
  clock.SleepUntilMs(10);  // already past: no-op, time never rewinds
  EXPECT_DOUBLE_EQ(clock.NowMs(), 25.0);
  clock.SleepUntilMs(25);
  EXPECT_DOUBLE_EQ(clock.NowMs(), 25.0);
}

// --- Open-loop replay under the fake clock -----------------------------

dbms::Database TinyDatabase() {
  dbms::Database db;
  rel::Relation t("a", rel::Schema::FromNames({"x", "y"}));
  for (int64_t i = 0; i < 32; ++i) {
    t.AppendUnchecked({rel::Value::Int(i), rel::Value::Int(i % 4)});
  }
  BRAID_CHECK_OK(db.AddTable(std::move(t)));
  return db;
}

caql::CaqlQuery Parse(const std::string& text) {
  auto q = caql::ParseCaql(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q.value());
}

/// A poolless CMS (enable_parallel = false) runs every QueryAsync inline
/// in the dispatcher; with a FakeLoadClock the whole open-loop replay is
/// then a pure function of (schedule, streams) — no wall clock anywhere.
TEST(OpenLoopReplay, DeterministicUnderFakeClock) {
  dbms::RemoteDbms remote(TinyDatabase());
  cms::CmsConfig config;
  config.enable_parallel = false;
  config.enable_prefetch = false;
  config.enable_generalization = false;
  config.enable_advice = false;
  cms::Cms cms(&remote, config);

  std::vector<ReplaySession> sessions(2);
  for (size_t s = 0; s < sessions.size(); ++s) {
    sessions[s].session = cms.OpenSession();
    sessions[s].queries = {Parse("q0(X, Y) :- a(X, Y)"),
                           Parse("q1(X) :- a(X, 1)")};
  }

  ArrivalParams params;
  params.rate_qps = 1000;
  params.count = 12;
  params.seed = 5;
  FakeLoadClock clock;
  OpenLoopOptions options;
  options.arrivals_ms = GenerateArrivals(params);
  options.clock = &clock;

  const ReplayStats stats = ReplayOpenLoop(cms, sessions, options);
  EXPECT_EQ(stats.issued, 12u);
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.failed, 0u);
  ASSERT_EQ(stats.latencies_ms.size(), 12u);
  // Inline execution completes each query at its own scheduled arrival
  // instant of fake time: every open-loop latency is exactly zero.
  for (double ms : stats.latencies_ms) EXPECT_DOUBLE_EQ(ms, 0.0);
  EXPECT_EQ(stats.max_queue_depth, 0u);

  for (ReplaySession& s : sessions) cms.CloseSession(s.session);
}

TEST(OpenLoopReplay, AccountsEveryArrivalAcrossStreamWrap) {
  dbms::RemoteDbms remote(TinyDatabase());
  cms::CmsConfig config;
  config.enable_parallel = false;
  config.enable_prefetch = false;
  config.enable_generalization = false;
  config.enable_advice = false;
  cms::Cms cms(&remote, config);

  // One session, one query, many more arrivals than queries: the replay
  // wraps the stream and still accounts for every arrival.
  std::vector<ReplaySession> sessions(1);
  sessions[0].session = cms.OpenSession();
  sessions[0].queries = {Parse("q(X, Y) :- a(X, Y)")};

  ArrivalParams params;
  params.process = ArrivalProcess::kFixed;
  params.rate_qps = 2000;
  params.count = 9;
  FakeLoadClock clock;
  OpenLoopOptions options;
  options.arrivals_ms = GenerateArrivals(params);
  options.clock = &clock;

  const ReplayStats stats = ReplayOpenLoop(cms, sessions, options);
  EXPECT_EQ(stats.issued, 9u);
  EXPECT_EQ(stats.completed + stats.rejected + stats.failed, stats.issued);
  EXPECT_EQ(stats.failed, 0u);

  cms.CloseSession(sessions[0].session);
}

// --- Quantile edge cases (bench/bench_util.h) --------------------------

TEST(Quantiles, EmptySampleIsZero) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(benchutil::Quantile(empty, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(benchutil::P50(empty), 0.0);
  EXPECT_DOUBLE_EQ(benchutil::P999(empty), 0.0);
}

TEST(Quantiles, SingleSampleIsEveryQuantile) {
  const std::vector<double> one = {42.5};
  EXPECT_DOUBLE_EQ(benchutil::Quantile(one, 0.0), 42.5);
  EXPECT_DOUBLE_EQ(benchutil::P50(one), 42.5);
  EXPECT_DOUBLE_EQ(benchutil::P99(one), 42.5);
  EXPECT_DOUBLE_EQ(benchutil::P999(one), 42.5);
}

TEST(Quantiles, TiesAndUnsortedInput) {
  // Unsorted with ties; Quantile sorts a copy, nearest-rank indexing.
  const std::vector<double> v = {5, 1, 5, 5, 2, 5, 5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(benchutil::P50(v), 5.0);
  EXPECT_DOUBLE_EQ(benchutil::Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(benchutil::Quantile(v, 1.0), 5.0);  // rank clamps to n-1
  EXPECT_DOUBLE_EQ(benchutil::P999(v), 5.0);
}

TEST(Quantiles, NearestRankOrdering) {
  std::vector<double> v;
  for (int i = 1; i <= 1000; ++i) v.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(benchutil::P50(v), 501.0);   // rank 500 (0-based)
  EXPECT_DOUBLE_EQ(benchutil::P99(v), 991.0);
  EXPECT_DOUBLE_EQ(benchutil::P999(v), 1000.0);
  EXPECT_LE(benchutil::P50(v), benchutil::P95(v));
  EXPECT_LE(benchutil::P95(v), benchutil::P99(v));
  EXPECT_LE(benchutil::P99(v), benchutil::P999(v));
}

// --- JSON output shape -------------------------------------------------

TEST(BenchJson, TableWritesNumbersBareAndStringsQuoted) {
  benchutil::Table table("load \"knee\"", {"rate_qps", "admission", "p99_ms"});
  table.AddRow(400, "on", 12.75);
  table.AddRow(800, "off", 3251.0);

  const std::string path = ::testing::TempDir() + "/braid_bench_shape.json";
  table.WriteJson(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  std::remove(path.c_str());

  // Title quoted with the inner quotes escaped.
  EXPECT_NE(json.find("\"title\": \"load \\\"knee\\\"\""), std::string::npos);
  // Numeric cells bare, string cells quoted.
  EXPECT_NE(json.find("\"rate_qps\": 400"), std::string::npos);
  EXPECT_NE(json.find("\"admission\": \"on\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ms\": 12.75"), std::string::npos);
  // Two row objects.
  size_t rows = 0;
  for (size_t pos = 0; (pos = json.find("\"admission\"", pos)) !=
                       std::string::npos;
       ++pos) {
    ++rows;
  }
  EXPECT_EQ(rows, 2u);
}

TEST(BenchJson, EmptyPathIsNoOp) {
  benchutil::Table table("t", {"c"});
  table.AddRow(1);
  table.WriteJson("");  // must not crash or create a file
}

}  // namespace
}  // namespace braid::testing
