// Tests for the IE ← CMS cache-model information flow (paper §3: "the IE
// can access cache model information from the CMS"): the cache model as a
// relation, and cache-aware conjunct ordering in the shaper.

#include <gtest/gtest.h>

#include "braid/braid_system.h"
#include "caql/caql_query.h"
#include "ie/shaper.h"
#include "logic/parser.h"

namespace braid {
namespace {

using rel::Value;

TEST(CacheModelRelation, ReflectsElements) {
  dbms::Database db;
  rel::Relation b("b", rel::Schema::FromNames({"x", "y"}));
  b.AppendUnchecked({Value::Int(1), Value::Int(2)});
  b.AppendUnchecked({Value::Int(3), Value::Int(4)});
  BRAID_CHECK_OK(db.AddTable(std::move(b)));
  dbms::RemoteDbms remote(std::move(db));
  cms::Cms cms(&remote, cms::CmsConfig{});

  rel::Relation empty_model = cms.cache().model().AsRelation();
  EXPECT_TRUE(empty_model.empty());
  EXPECT_EQ(empty_model.schema().size(), 6u);

  ASSERT_TRUE(cms.Query(caql::ParseCaql("q(X, Y) :- b(X, Y)").value()).ok());
  rel::Relation model = cms.cache().model().AsRelation();
  ASSERT_EQ(model.NumTuples(), 1u);
  EXPECT_EQ(model.tuple(0)[2], Value::String("extension"));
  EXPECT_EQ(model.tuple(0)[3], Value::Int(2));  // tuples
  EXPECT_GT(model.tuple(0)[4].AsInt(), 0);      // bytes
}

TEST(CacheModelRelation, HasMaterializedFor) {
  cms::CacheModel model;
  EXPECT_FALSE(model.HasMaterializedFor("b"));
  auto def = caql::ParseCaql("e(X, Y) :- b(X, Y)").value();
  // Generator-form element: present but not materialized.
  model.Register(std::make_shared<cms::CacheElement>("G1", def));
  EXPECT_FALSE(model.HasMaterializedFor("b"));
  auto ext = std::make_shared<rel::Relation>(
      "E1", rel::Schema::FromNames({"X", "Y"}));
  model.Register(std::make_shared<cms::CacheElement>("E1", def, ext));
  EXPECT_TRUE(model.HasMaterializedFor("b"));
  EXPECT_FALSE(model.HasMaterializedFor("other"));
}

TEST(CacheAwareShaping, CachedRelationOrderedFirst) {
  // Two equally sized tables; caching one should flip the shaper's
  // conjunct order in its favour.
  dbms::Database db;
  for (const char* name : {"t1", "t2"}) {
    rel::Relation t(name, rel::Schema::FromNames({"a", "b"}));
    for (int i = 0; i < 50; ++i) {
      t.AppendUnchecked({Value::Int(i), Value::Int(i + 1)});
    }
    BRAID_CHECK_OK(db.AddTable(std::move(t)));
  }
  logic::KnowledgeBase kb;
  ASSERT_TRUE(logic::ParseProgram(R"(
#base t1(a, b).
#base t2(a, b).
p(X, Z) :- t1(X, Y), t2(Y, Z).
)",
                                  &kb)
                  .ok());
  dbms::RemoteDbms remote(std::move(db));
  cms::Cms cms(&remote, cms::CmsConfig{});
  ie::InferenceEngine ie(&kb, &cms, ie::IeConfig{});
  auto query = logic::ParseQueryAtom("p(X, Z)").value();

  // Without anything cached, t1 and t2 tie; the shaper keeps t1 first.
  auto before = ie.Analyze(query);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->graph.root->alternatives[0]->subgoals[0]->goal.predicate,
            "t1");

  // Cache t2: the cache-residency discount should move it first.
  ASSERT_TRUE(cms.Query(caql::ParseCaql("warm(A, B) :- t2(A, B)").value())
                  .ok());
  auto after = ie.Analyze(query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->graph.root->alternatives[0]->subgoals[0]->goal.predicate,
            "t2");

  // And the query still answers correctly with the flipped order.
  auto out = ie.Ask(query);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->solutions.NumTuples(), 49u);
}

}  // namespace
}  // namespace braid
