// Targeted tests for branches the mainline suites leave cold: rendering
// paths, error branches in the RDI translation, substitution chain
// corners, and enum-name helpers.

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/coupling_modes.h"
#include "cms/cms.h"
#include "ie/problem_graph.h"
#include "ie/shaper.h"
#include "logic/parser.h"
#include "logic/substitution.h"

namespace braid {
namespace {

using rel::Value;

TEST(Rendering, PredicateForms) {
  auto p = rel::Predicate::Or(
      {rel::Predicate::Not(rel::Predicate::ColumnConst(
           0, rel::CompareOp::kLe, Value::Int(3))),
       rel::Predicate::ColumnColumn(1, rel::CompareOp::kNe, 2),
       rel::Predicate::True()});
  EXPECT_EQ(p->ToString(), "(NOT #0 <= 3 OR #1 != #2 OR TRUE)");
  EXPECT_EQ(rel::Predicate::Or({})->ToString(), "()");
}

TEST(Rendering, ValueFormsAndNumeric) {
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_DOUBLE_EQ(Value::Int(4).NumericValue(), 4.0);
  EXPECT_DOUBLE_EQ(Value::Double(4.5).NumericValue(), 4.5);
  EXPECT_FALSE(Value::String("x").IsNumeric());
  EXPECT_STREQ(rel::ValueTypeName(rel::ValueType::kNull), "NULL");
  EXPECT_STREQ(rel::ValueTypeName(rel::ValueType::kDouble), "DOUBLE");
}

TEST(Rendering, StatusStreaming) {
  std::ostringstream os;
  os << Status::ParseError("boom");
  EXPECT_EQ(os.str(), "ParseError: boom");
}

TEST(Rendering, CacheOutcomeAndCouplingNames) {
  EXPECT_STREQ(cms::CacheOutcomeName(cms::CacheOutcome::kExact), "exact");
  EXPECT_STREQ(cms::CacheOutcomeName(cms::CacheOutcome::kLazy), "lazy");
  EXPECT_STREQ(cms::CacheOutcomeName(cms::CacheOutcome::kPartial),
               "partial");
  using baselines::CouplingMode;
  EXPECT_STREQ(baselines::CouplingModeName(CouplingMode::kLooseCoupling),
               "loose-coupling");
  EXPECT_STREQ(baselines::CouplingModeName(CouplingMode::kSingleRelationCache),
               "single-relation");
  EXPECT_STREQ(baselines::CouplingModeName(CouplingMode::kBraid), "braid");
}

TEST(Rendering, StatsToStrings) {
  dbms::RemoteStats rs;
  rs.queries = 2;
  EXPECT_NE(rs.ToString().find("queries=2"), std::string::npos);
  cms::CmsMetrics m;
  m.exact_hits = 3;
  EXPECT_NE(m.ToString().find("exact=3"), std::string::npos);
}

TEST(Rendering, GeneratorElementToString) {
  auto def = caql::ParseCaql("e(X) :- b(X)").value();
  cms::CacheElement g("G9", def);
  EXPECT_NE(g.ToString().find("generator"), std::string::npos);
  cms::CacheModel model;
  model.Register(std::make_shared<cms::CacheElement>("G9", def));
  EXPECT_NE(model.ToString().find("G9"), std::string::npos);
}

TEST(SubstitutionEdge, ConflictingChainAndUnion) {
  logic::Substitution s;
  EXPECT_TRUE(s.Bind("A", logic::Term::Var("B")));
  EXPECT_TRUE(s.Bind("C", logic::Term::Var("B")));
  // A and C both alias B: binding A to 5 must propagate everywhere.
  EXPECT_TRUE(s.Bind("A", logic::Term::Int(5)));
  EXPECT_EQ(s.Apply(logic::Term::Var("C")), logic::Term::Int(5));
  // Conflict through the chain is refused.
  EXPECT_FALSE(s.Bind("C", logic::Term::Int(6)));
  EXPECT_NE(s.ToString().find("="), std::string::npos);
}

TEST(SubstitutionEdge, BindVarToItselfNoop) {
  logic::Substitution s;
  EXPECT_TRUE(s.Bind("X", logic::Term::Var("X")));
  EXPECT_TRUE(s.empty());
}

TEST(ProblemGraphEdge, RenderShowsLeafKindsAndMutex) {
  logic::KnowledgeBase kb;
  ASSERT_TRUE(logic::ParseProgram(R"(
#base b(x).
#mutex g1, g2.
#agg cnt(N) = count X : b(X).
g1(X) :- b(X), X > 1.
g2(X) :- b(X), X <= 1.
p(X, N) :- g1(X), cnt(N).
p(X, N) :- g2(X), cnt(N).
top(X, N) :- p(X, N).
)",
                                  &kb)
                  .ok());
  ie::ProblemGraphExtractor ex(&kb);
  auto g = ex.Extract(logic::ParseQueryAtom("top(X, N)").value());
  ASSERT_TRUE(g.ok());
  ie::ProblemGraphShaper shaper(&kb, nullptr);
  ASSERT_TRUE(shaper.Shape(&g.value()).ok());
  const std::string s = g->ToString();
  EXPECT_NE(s.find("[base]"), std::string::npos);
  EXPECT_NE(s.find("[aggregate]"), std::string::npos);
  EXPECT_NE(s.find("[builtin]"), std::string::npos);
  EXPECT_NE(s.find("[mutex]"), std::string::npos);
}

TEST(ProblemGraphEdge, ComparisonQueryRejected) {
  logic::KnowledgeBase kb;
  ie::ProblemGraphExtractor ex(&kb);
  logic::Atom comp("<", {logic::Term::Int(1), logic::Term::Int(2)});
  EXPECT_EQ(ex.Extract(comp).status().code(), StatusCode::kInvalidArgument);
}

TEST(RdiEdge, GroundFalseComparisonYieldsEmpty) {
  dbms::Database db;
  rel::Relation b("b", rel::Schema::FromNames({"x"}));
  b.AppendUnchecked({Value::Int(1)});
  BRAID_CHECK_OK(db.AddTable(std::move(b)));
  dbms::RemoteDbms remote(std::move(db));
  cms::RemoteDbmsInterface rdi(&remote);
  auto fetch = rdi.Fetch(
      caql::ParseCaql("q(X) :- b(X) & 2 < 1").value(), {"X"});
  ASSERT_TRUE(fetch.ok()) << fetch.status().ToString();
  EXPECT_TRUE(fetch->bindings.empty());
  auto fetch2 = rdi.Fetch(
      caql::ParseCaql("q(X) :- b(X) & 1 < 2").value(), {"X"});
  ASSERT_TRUE(fetch2.ok());
  EXPECT_EQ(fetch2->bindings.NumTuples(), 1u);
}

TEST(RdiEdge, VarVarComparisonAcrossTables) {
  dbms::Database db;
  rel::Relation a("a", rel::Schema::FromNames({"x"}));
  rel::Relation b("b", rel::Schema::FromNames({"y"}));
  for (int i = 0; i < 4; ++i) {
    a.AppendUnchecked({Value::Int(i)});
    b.AppendUnchecked({Value::Int(i)});
  }
  BRAID_CHECK_OK(db.AddTable(std::move(a)));
  BRAID_CHECK_OK(db.AddTable(std::move(b)));
  dbms::RemoteDbms remote(std::move(db));
  cms::RemoteDbmsInterface rdi(&remote);
  auto fetch = rdi.Fetch(
      caql::ParseCaql("q(X, Y) :- a(X) & b(Y) & X > Y").value(), {"X", "Y"});
  ASSERT_TRUE(fetch.ok()) << fetch.status().ToString();
  EXPECT_EQ(fetch->bindings.NumTuples(), 6u);  // strict pairs
}

TEST(RdiEdge, ComparisonOverForeignVariableRejected) {
  dbms::Database db;
  rel::Relation b("b", rel::Schema::FromNames({"x"}));
  BRAID_CHECK_OK(db.AddTable(std::move(b)));
  dbms::RemoteDbms remote(std::move(db));
  cms::RemoteDbmsInterface rdi(&remote);
  caql::CaqlQuery q;
  q.name = "bad";
  q.head_args = {logic::Term::Var("X")};
  q.body = {logic::Atom("b", {logic::Term::Var("X")}),
            logic::Atom("<", {logic::Term::Var("Z"), logic::Term::Int(3)})};
  // Z occurs in no relation atom of the subquery.
  EXPECT_EQ(rdi.Translate(q, {"X"}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShaperEdge, CullDisabledKeepsDeadBranches) {
  logic::KnowledgeBase kb;
  ASSERT_TRUE(logic::ParseProgram(R"(
#base b(x).
p(X) :- b(X), 1 > 2.
p(X) :- b(X).
)",
                                  &kb)
                  .ok());
  ie::ProblemGraphExtractor ex(&kb);
  auto g = ex.Extract(logic::ParseQueryAtom("p(X)").value());
  ASSERT_TRUE(g.ok());
  ie::ProblemGraphShaper no_cull(&kb, nullptr,
                                 ie::ShaperConfig{false, true});
  ASSERT_TRUE(no_cull.Shape(&g.value()).ok());
  EXPECT_EQ(g->root->alternatives.size(), 2u);
}

TEST(AggNames, AllFunctions) {
  EXPECT_STREQ(logic::AggregateFnName(logic::AggregateFn::kCount), "count");
  EXPECT_STREQ(logic::AggregateFnName(logic::AggregateFn::kSum), "sum");
  EXPECT_STREQ(logic::AggregateFnName(logic::AggregateFn::kMin), "min");
  EXPECT_STREQ(logic::AggregateFnName(logic::AggregateFn::kMax), "max");
  EXPECT_STREQ(logic::AggregateFnName(logic::AggregateFn::kAvg), "avg");
}

}  // namespace
}  // namespace braid
