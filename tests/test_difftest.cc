// Tests for the differential oracle harness itself: the reference
// evaluator's semantics, bag comparison, workload determinism, the
// runner's ability to catch a deliberately injected cache-corruption
// bug, failure minimization, clean fault propagation, and sharded
// smoke runs of the full configuration matrix (one shard runs under
// TSan in CI).

#include <gtest/gtest.h>

#include "caql/caql_query.h"
#include "relational/relation.h"
#include "relational/value.h"
#include "testing/diff_runner.h"
#include "testing/fault_remote.h"
#include "testing/reference_eval.h"
#include "testing/workload_gen.h"

namespace braid::testing {
namespace {

using caql::CaqlQuery;
using caql::ParseCaql;
using rel::Relation;
using rel::Schema;
using rel::Value;

CaqlQuery Q(const std::string& text) {
  auto r = ParseCaql(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.value();
}

dbms::Database SmallDb() {
  dbms::Database db;
  rel::Relation p("p", Schema::FromNames({"a", "b"}));
  p.AppendUnchecked({Value::Int(1), Value::Int(10)});
  p.AppendUnchecked({Value::Int(1), Value::Int(10)});  // duplicate row
  p.AppendUnchecked({Value::Int(2), Value::Int(20)});
  p.AppendUnchecked({Value::Int(3), Value::Int(30)});
  rel::Relation r("r", Schema::FromNames({"x"}));
  r.AppendUnchecked({Value::Int(10)});
  r.AppendUnchecked({Value::Int(20)});
  BRAID_CHECK_OK(db.AddTable(std::move(p)));
  BRAID_CHECK_OK(db.AddTable(std::move(r)));
  return db;
}

// --- Reference evaluator semantics -----------------------------------

TEST(ReferenceEval, BagSemanticsKeepDuplicates) {
  auto got = ReferenceEval(SmallDb(), Q("q(X) :- p(X, Y)"));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // Four body solutions (the duplicate base row counts twice).
  EXPECT_EQ(got->NumTuples(), 4u);
}

TEST(ReferenceEval, DistinctCollapses) {
  CaqlQuery q = Q("q(X) :- p(X, Y)");
  q.distinct = true;
  auto got = ReferenceEval(SmallDb(), q);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->NumTuples(), 3u);
}

TEST(ReferenceEval, JoinMultiplicity) {
  // p(1,10) twice joins r(10) once each: 2 + p(2,20)*r(20) = 3 rows.
  auto got = ReferenceEval(SmallDb(), Q("q(X, Y) :- p(X, Y) & r(Y)"));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->NumTuples(), 3u);
}

TEST(ReferenceEval, ComparisonsPrune) {
  auto got = ReferenceEval(SmallDb(), Q("q(X) :- p(X, Y) & Y > 10"));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->NumTuples(), 2u);  // (2,20) and (3,30)
}

TEST(ReferenceEval, NegationAsFailure) {
  auto got = ReferenceEval(SmallDb(), Q("q(X) :- p(X, Y) & not r(Y)"));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->NumTuples(), 1u);  // only (3,30): 10 and 20 are in r
  EXPECT_EQ(got->tuple(0)[0], Value::Int(3));
}

TEST(ReferenceEval, ConstantsInHeadAndBody) {
  auto got = ReferenceEval(SmallDb(), Q("q(X, 7) :- p(X, 10)"));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->NumTuples(), 2u);
  EXPECT_EQ(got->tuple(0)[1], Value::Int(7));
}

// --- Bag comparison helpers ------------------------------------------

Relation Rel(const std::vector<std::vector<int64_t>>& rows) {
  Relation r("t", Schema::FromNames({"a"}));
  for (const auto& row : rows) {
    rel::Tuple t;
    for (int64_t v : row) t.push_back(Value::Int(v));
    r.AppendUnchecked(std::move(t));
  }
  return r;
}

TEST(BagCompare, EqualityIsOrderInsensitiveAndMultiplicityAware) {
  EXPECT_TRUE(BagEqual(Rel({{1}, {2}, {1}}), Rel({{2}, {1}, {1}})));
  std::string diff;
  EXPECT_FALSE(BagEqual(Rel({{1}, {2}}), Rel({{1}, {1}, {2}}), &diff));
  EXPECT_NE(diff.find("cardinality"), std::string::npos);
  EXPECT_FALSE(BagEqual(Rel({{1}, {1}}), Rel({{1}, {2}}), &diff));
}

TEST(BagCompare, ContainmentCountsMultiplicity) {
  EXPECT_TRUE(BagContains(Rel({{1}, {1}, {2}}), Rel({{1}, {2}})));
  EXPECT_TRUE(BagContains(Rel({{1}, {2}}), Rel({})));
  std::string diff;
  // {1,1} needs two 1s; the superset has one.
  EXPECT_FALSE(BagContains(Rel({{1}, {2}}), Rel({{1}, {1}}), &diff));
  EXPECT_NE(diff.find("missing"), std::string::npos);
}

// --- Workload generator ----------------------------------------------

TEST(WorkloadGen, DeterministicFromSeed) {
  WorkloadParams params;
  params.seed = 7;
  GeneratedWorkload a = GenerateWorkload(params);
  GeneratedWorkload b = GenerateWorkload(params);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].ToString(), b.queries[i].ToString());
    EXPECT_EQ(a.queries[i].distinct, b.queries[i].distinct);
  }
  EXPECT_EQ(a.advice.ToString(), b.advice.ToString());
  EXPECT_EQ(a.database.TotalTuples(), b.database.TotalTuples());
}

TEST(WorkloadGen, SeedsDiffer) {
  WorkloadParams pa, pb;
  pa.seed = 1;
  pb.seed = 2;
  GeneratedWorkload a = GenerateWorkload(pa);
  GeneratedWorkload b = GenerateWorkload(pb);
  std::string sa, sb;
  for (const auto& q : a.queries) sa += q.ToString() + "\n";
  for (const auto& q : b.queries) sb += q.ToString() + "\n";
  EXPECT_NE(sa, sb);
}

TEST(WorkloadGen, QueriesValidateAndAdviceIsConsistent) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    WorkloadParams params;
    params.seed = seed;
    GeneratedWorkload w = GenerateWorkload(params);
    EXPECT_FALSE(w.queries.empty());
    for (const auto& q : w.queries) {
      EXPECT_TRUE(q.Validate().ok()) << q.ToString();
    }
    // Every view the path expression mentions exists.
    if (w.advice.path_expression != nullptr) {
      for (const std::string& id : w.advice.path_expression->MentionedViews()) {
        EXPECT_NE(w.advice.FindView(id), nullptr) << id;
      }
    }
    // Named stream queries that match a view id are instances of it.
    for (const auto& q : w.queries) {
      const advice::ViewSpec* view = w.advice.FindView(q.name);
      if (view != nullptr) {
        EXPECT_EQ(q.head_args.size(), view->head.size()) << q.ToString();
      }
    }
  }
}

// --- The runner catches an injected cache-corruption bug --------------

TEST(DiffRunner, CorruptionIsCaught) {
  DiffOptions opts;
  opts.seed = 3;
  opts.num_threads = 1;
  opts.prefetch = false;       // keep the run quiescent and deterministic
  opts.corrupt_after_query = 1;
  DiffReport report = RunDifferential(opts);
  ASSERT_FALSE(report.ok)
      << "deliberately poisoned cache extensions went undetected";
  bool saw_mismatch = false;
  for (const DiffFailure& f : report.failures) {
    if (f.kind == "bag-mismatch") saw_mismatch = true;
  }
  EXPECT_TRUE(saw_mismatch) << report.Summary();
}

TEST(DiffRunner, CleanRunPassesAndRecheckRuns) {
  DiffOptions opts;
  opts.seed = 3;
  opts.num_threads = 1;
  opts.prefetch = false;
  DiffReport report = RunDifferential(opts);
  EXPECT_TRUE(report.ok) << report.Summary();
  // pass1 + recheck both count queries.
  EXPECT_EQ(report.queries_run, 2 * opts.num_queries);
  EXPECT_GT(report.exact_hits, 0u);  // recheck hits the warm cache
}

TEST(DiffRunner, MinimizerShrinksCorruptionFailure) {
  DiffOptions opts;
  opts.seed = 3;
  opts.num_threads = 1;
  opts.prefetch = false;
  opts.corrupt_after_query = 1;
  std::vector<size_t> minimized = MinimizeFailure(opts);
  EXPECT_LT(minimized.size(), opts.num_queries);
  EXPECT_GE(minimized.size(), 1u);
  // The minimized stream still fails.
  opts.keep = minimized;
  EXPECT_FALSE(RunDifferential(opts).ok);
  // And the repro command names the kept indices.
  EXPECT_NE(ReproCommand(opts).find("--keep"), std::string::npos);
}

// --- Fault injection --------------------------------------------------

TEST(FaultRemote, InjectsSeededErrorsAndMarksThem) {
  FaultPlan plan;
  plan.seed = 11;
  plan.error_rate = 0.5;
  FaultyRemoteDbms remote(SmallDb(), plan);
  dbms::SqlQuery sql;
  sql.from = {"p"};
  size_t errors = 0;
  for (int i = 0; i < 50; ++i) {
    auto r = remote.Execute(sql);
    if (!r.ok()) {
      ++errors;
      EXPECT_TRUE(IsInjectedFault(r.status())) << r.status().ToString();
    }
  }
  EXPECT_GT(errors, 5u);
  EXPECT_LT(errors, 45u);
  EXPECT_EQ(errors, remote.injected_errors());

  // Same plan, same sequence: determinism across instances.
  FaultyRemoteDbms remote2(SmallDb(), plan);
  size_t errors2 = 0;
  for (int i = 0; i < 50; ++i) {
    if (!remote2.Execute(sql).ok()) ++errors2;
  }
  EXPECT_EQ(errors, errors2);
}

TEST(FaultRemote, WarmupCallsAreExempt) {
  FaultPlan plan;
  plan.seed = 1;
  plan.error_rate = 1.0;
  plan.warmup_calls = 3;
  FaultyRemoteDbms remote(SmallDb(), plan);
  dbms::SqlQuery sql;
  sql.from = {"p"};
  EXPECT_TRUE(remote.Execute(sql).ok());
  EXPECT_TRUE(remote.Execute(sql).ok());
  EXPECT_TRUE(remote.Execute(sql).ok());
  EXPECT_FALSE(remote.Execute(sql).ok());
}

TEST(DiffRunner, FaultsSurfaceCleanly) {
  // A hostile link: half the calls fail, half are delayed. Every failure
  // must surface as a clean injected-fault Status — never a crash, a
  // hang, or a wrong answer — including faults landing mid-prefetch.
  for (uint64_t seed : {0, 5, 9}) {
    DiffOptions opts;
    opts.seed = seed;
    opts.num_threads = 4;
    opts.faults = true;
    opts.fault_plan.error_rate = 0.5;
    opts.fault_plan.delay_rate = 0.5;
    opts.fault_plan.delay_ms = 0.5;
    DiffReport report = RunDifferential(opts);
    EXPECT_TRUE(report.ok) << report.Summary();
  }
}

// --- Sharded smoke runs of the full matrix ----------------------------

void SmokeShard(uint64_t lo, uint64_t hi) {
  for (uint64_t seed = lo; seed < hi; ++seed) {
    DiffOptions failing;
    DiffReport report =
        RunSeedMatrix(seed, /*num_queries=*/16, /*with_faults=*/true,
                      &failing);
    ASSERT_TRUE(report.ok) << report.Summary() << "\nrepro: "
                           << ReproCommand(failing);
  }
}

TEST(DifftestSmoke, Shard0) { SmokeShard(0, 4); }
TEST(DifftestSmoke, Shard1) { SmokeShard(4, 8); }
TEST(DifftestSmoke, Shard2) { SmokeShard(8, 12); }
TEST(DifftestSmoke, Shard3) { SmokeShard(12, 16); }

// --- Multi-session mode -----------------------------------------------

TEST(DifftestSessions, InterleavedSessionsMatchTheOracle) {
  // Eight sessions replay the same stream rotated by their index through
  // the session scheduler, sharing one CMS; every answer of every session
  // is bag-checked against the oracle.
  for (uint64_t seed : {0, 7}) {
    DiffOptions opts;
    opts.seed = seed;
    opts.num_threads = 8;
    opts.sessions = 8;
    DiffReport report = RunDifferential(opts);
    EXPECT_TRUE(report.ok) << report.Summary() << "\nrepro: "
                           << ReproCommand(opts);
    EXPECT_EQ(report.queries_run, 8 * opts.num_queries);
  }
}

TEST(DifftestSessions, SessionsModeStillCatchesCorruption) {
  DiffOptions opts;
  opts.seed = 3;
  opts.sessions = 4;
  opts.num_threads = 4;
  opts.prefetch = false;
  opts.corrupt_after_query = 1;
  DiffReport report = RunDifferential(opts);
  ASSERT_FALSE(report.ok)
      << "poisoned cache extensions went undetected in sessions mode";
}

TEST(DifftestSessions, ReproCommandNamesTheSessionCount) {
  DiffOptions opts;
  opts.sessions = 8;
  EXPECT_NE(ReproCommand(opts).find("--sessions 8"), std::string::npos);
}

// Regression: the exact seed/stream where the harness first caught the
// missing SETOF guard in subsumption (a cached distinct element serving
// a bag query returned 14 of 32 rows).
TEST(DifftestSmoke, Seed25DistinctElementRegression) {
  DiffOptions opts;
  opts.seed = 25;
  opts.num_threads = 1;
  opts.prefetch = false;
  opts.keep = {10, 16};
  DiffReport report = RunDifferential(opts);
  EXPECT_TRUE(report.ok) << report.Summary();
}

}  // namespace
}  // namespace braid::testing
