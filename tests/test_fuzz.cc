// Robustness fuzzing: randomly generated and mutated inputs must never
// crash the parsers or the CMS — every malformed input surfaces as a
// Status, and every accepted input round-trips safely.

#include <gtest/gtest.h>

#include "caql/caql_query.h"
#include "cms/cms.h"
#include "common/rng.h"
#include "logic/parser.h"

namespace braid {
namespace {

/// Random strings over the token alphabet the lexer knows plus noise.
std::string RandomInput(Rng* rng, size_t max_len) {
  static const char* kFragments[] = {
      "p",  "q",    "X",    "Y",  "(",  ")",   ",",  ".",  ":-", "&",
      "<",  "<=",   ">",    "=",  "!=", "not", "#",  "base", "mutex",
      "fd", "agg",  "42",   "-7", "3.5", "'s'", " ",  "\n", "%c\n",
      "_V", "closure", "->", ":", "?",  "count", "sum"};
  std::string out;
  const size_t len = static_cast<size_t>(rng->Uniform(1, max_len));
  for (size_t i = 0; i < len; ++i) {
    out += kFragments[rng->Uniform(
        0, static_cast<int64_t>(std::size(kFragments)) - 1)];
  }
  return out;
}

/// Mutates a valid program by deleting / duplicating / swapping chars.
std::string Mutate(std::string text, Rng* rng, int edits) {
  for (int e = 0; e < edits && !text.empty(); ++e) {
    const size_t pos = static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(text.size()) - 1));
    switch (rng->Uniform(0, 2)) {
      case 0:
        text.erase(pos, 1);
        break;
      case 1:
        text.insert(pos, 1, text[pos]);
        break;
      default:
        text[pos] = "()[].,&#<>=XYpq0"[rng->Uniform(0, 15)];
        break;
    }
  }
  return text;
}

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, RandomInputNeverCrashes) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 400; ++trial) {
    const std::string input = RandomInput(&rng, 60);
    logic::KnowledgeBase kb;
    Status s = logic::ParseProgram(input, &kb);
    // Either it parses or it reports a structured error — never crashes.
    if (!s.ok()) {
      EXPECT_FALSE(s.message().empty()) << input;
    }
    // Deliberate discards: fuzzing asserts only the absence of crashes
    // and hangs; whether these parses succeed is irrelevant here.
    auto atom = logic::ParseQueryAtom(input);
    (void)atom;
    auto caql = caql::ParseCaql(input);
    (void)caql;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParserFuzz,
                         ::testing::Values(1, 2, 3, 4, 5));

class MutationFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationFuzz, MutatedProgramsNeverCrash) {
  const char* kValid = R"(
#base b1(a, b).
#base b2(a, b).
#mutex p, q.
#fd b1: 0 -> 1.
#closure r = b1.
#agg deg(X, N) = count Y : b1(X, Y).
r(X, Y) :- b1(X, Y).
r(X, Y) :- b1(X, Z), r(Z, Y).
p(X) :- b1(X, Y), Y > 3, not b2(X, Y).
q(X) :- b2(X, Y), Y <= 3.
)";
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    const std::string mutated =
        Mutate(kValid, &rng, static_cast<int>(rng.Uniform(1, 12)));
    logic::KnowledgeBase kb;
    Status s = logic::ParseProgram(mutated, &kb);
    if (s.ok()) {
      // Whatever parsed must re-render to something parseable.
      logic::KnowledgeBase kb2;
      Status s2 = logic::ParseProgram(kb.ToString(), &kb2);
      EXPECT_TRUE(s2.ok()) << "round-trip failed for:\n"
                           << kb.ToString() << "\nerror: " << s2.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MutationFuzz,
                         ::testing::Values(10, 20, 30, 40));

TEST(CmsFuzz, ArbitraryWellFormedQueriesNeverCrash) {
  dbms::Database db;
  rel::Relation b("b1", rel::Schema::FromNames({"x", "y"}));
  for (int i = 0; i < 20; ++i) {
    b.AppendUnchecked({rel::Value::Int(i % 4), rel::Value::Int(i)});
  }
  BRAID_CHECK_OK(db.AddTable(std::move(b)));
  dbms::RemoteDbms remote(std::move(db));
  cms::CmsConfig config;
  config.cache_budget_bytes = 2048;  // force eviction churn too
  cms::Cms cms(&remote, config);

  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string text = RandomInput(&rng, 40);
    auto q = caql::ParseCaql(text);
    if (!q.ok()) continue;
    auto answer = cms.Query(q.value());
    // Any structured failure is fine; crashes and hangs are not.
    (void)answer;
  }
}

TEST(UnionQuery, BranchesCombineAndDedupe) {
  dbms::Database db;
  rel::Relation b("b1", rel::Schema::FromNames({"x", "y"}));
  b.AppendUnchecked({rel::Value::Int(1), rel::Value::Int(10)});
  b.AppendUnchecked({rel::Value::Int(2), rel::Value::Int(20)});
  BRAID_CHECK_OK(db.AddTable(std::move(b)));
  dbms::RemoteDbms remote(std::move(db));
  cms::Cms cms(&remote, cms::CmsConfig{});

  auto b1 = caql::ParseCaql("u1(X) :- b1(X, 10)").value();
  auto b2 = caql::ParseCaql("u2(X) :- b1(X, 20)").value();
  auto b3 = caql::ParseCaql("u3(X) :- b1(X, Y)").value();

  auto un = cms.QueryUnion({b1, b2});
  ASSERT_TRUE(un.ok()) << un.status().ToString();
  EXPECT_EQ(un->NumTuples(), 2u);

  auto overlapping = cms.QueryUnion({b1, b3});
  ASSERT_TRUE(overlapping.ok());
  EXPECT_EQ(overlapping->NumTuples(), 3u);  // bag union

  auto dedup = cms.QueryUnion({b1, b3}, /*distinct=*/true);
  ASSERT_TRUE(dedup.ok());
  EXPECT_EQ(dedup->NumTuples(), 2u);  // setof union

  // Arity mismatch rejected.
  auto wide = caql::ParseCaql("u4(X, Y) :- b1(X, Y)").value();
  EXPECT_EQ(cms.QueryUnion({b1, wide}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cms.QueryUnion({}).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace braid
