// Unit tests for the parallel execution engine (src/exec/): the morsel
// thread pool, the determinism contract of every parallel operator
// (byte-identical to the serial rel:: counterpart across worker counts and
// input sizes straddling the parallel threshold), and the execution
// monitor's genuinely concurrent remote fetches.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

#include "caql/caql_query.h"
#include "cms/execution_monitor.h"
#include "common/rng.h"
#include "exec/parallel_ops.h"
#include "exec/thread_pool.h"
#include "relational/operators.h"

namespace braid {
namespace {

using rel::Tuple;
using rel::Value;

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, SubmitReturnsValue) {
  exec::ThreadPool pool(2);
  auto f = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitWorksWithZeroWorkers) {
  exec::ThreadPool pool(0);  // degenerate: runs inline
  auto f = pool.Submit([] { return std::string("inline"); });
  EXPECT_EQ(f.get(), "inline");
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  exec::ThreadPool pool(3);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, /*grain=*/64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForHandlesEmptyAndTinyRanges) {
  exec::ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, 16, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<size_t> total{0};
  pool.ParallelFor(1, 16, [&](size_t begin, size_t end) {
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 1u);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Completion is tracked by a morsel counter, not helper futures, so an
  // inner loop running on a worker cannot deadlock waiting for tasks that
  // are queued behind it.
  exec::ThreadPool pool(2);
  std::atomic<size_t> total{0};
  pool.ParallelFor(8, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      pool.ParallelFor(100, 10, [&](size_t b, size_t e) {
        total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(total.load(), 800u);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  exec::ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(100, 8,
                       [](size_t begin, size_t) {
                         if (begin >= 48) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // Pool must still be usable afterwards.
  auto f = pool.Submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

// ---------------------------------------------------------------------------
// Parallel operators: byte-identical to serial across worker counts and
// input sizes straddling the threshold.

constexpr size_t kThreshold = 64;
const size_t kSizes[] = {0, 1, 63, 64, 65, 1000};
const size_t kThreads[] = {1, 2, 8};

/// ExecContext forcing multiple small morsels so the merge logic is
/// exercised even on modest inputs.
exec::ExecContext Ctx(exec::ThreadPool* pool) {
  exec::ExecContext ctx;
  ctx.pool = pool;
  ctx.parallel_threshold = kThreshold;
  ctx.morsel_tuples = 16;
  return ctx;
}

rel::Relation MakeInts(const std::string& name, size_t rows, uint64_t seed,
                       int64_t key_range) {
  Rng rng(seed);
  rel::Relation r(name, rel::Schema::FromNames({"k", "j", "v"}));
  for (size_t i = 0; i < rows; ++i) {
    r.AppendUnchecked({Value::Int(rng.Uniform(0, key_range)),
                       Value::Int(rng.Uniform(0, 3)),
                       Value::Int(static_cast<int64_t>(i))});
  }
  return r;
}

void ExpectIdentical(const rel::Relation& serial, const rel::Relation& par) {
  ASSERT_TRUE(serial.schema() == par.schema())
      << serial.schema().ToString() << " vs " << par.schema().ToString();
  ASSERT_EQ(serial.NumTuples(), par.NumTuples());
  EXPECT_TRUE(serial.tuples() == par.tuples());
}

TEST(ParallelOps, SelectMatchesSerial) {
  auto pred = rel::Predicate::ColumnConst(0, rel::CompareOp::kLt,
                                          Value::Int(10));
  for (size_t threads : kThreads) {
    exec::ThreadPool pool(threads);
    for (size_t n : kSizes) {
      rel::Relation in = MakeInts("in", n, 1, 20);
      ExpectIdentical(rel::Select(in, *pred),
                      exec::Select(Ctx(&pool), in, *pred));
    }
  }
}

TEST(ParallelOps, ProjectMatchesSerialIncludingDuplicateColumns) {
  const std::vector<size_t> cols = {2, 0, 2};
  for (size_t threads : kThreads) {
    exec::ThreadPool pool(threads);
    for (size_t n : kSizes) {
      rel::Relation in = MakeInts("in", n, 2, 50);
      ExpectIdentical(rel::Project(in, cols),
                      exec::Project(Ctx(&pool), in, cols));
    }
  }
}

TEST(ParallelOps, HashJoinMatchesSerial) {
  const std::vector<rel::JoinKey> keys = {{0, 0}};
  for (size_t threads : kThreads) {
    exec::ThreadPool pool(threads);
    for (size_t n : kSizes) {
      rel::Relation left = MakeInts("l", n, 3, 8);
      rel::Relation right = MakeInts("r", n / 2 + 1, 4, 8);
      ExpectIdentical(rel::HashJoin(left, right, keys),
                      exec::HashJoin(Ctx(&pool), left, right, keys));
    }
  }
}

TEST(ParallelOps, CompositeKeyHashJoinMatchesSerialAndNestedLoop) {
  // Composite key (k, j): the serial operator hashes all key columns (not
  // just the first), and the parallel operator must agree with it — and
  // both with the brute-force nested loop, order aside.
  const std::vector<rel::JoinKey> keys = {{0, 0}, {1, 1}};
  exec::ThreadPool pool(4);
  rel::Relation left = MakeInts("l", 300, 5, 4);   // skewed: few distinct k
  rel::Relation right = MakeInts("r", 200, 6, 4);
  rel::Relation serial = rel::HashJoin(left, right, keys);
  ExpectIdentical(serial, exec::HashJoin(Ctx(&pool), left, right, keys));

  auto pred = rel::Predicate::And(
      {rel::Predicate::ColumnColumn(0, rel::CompareOp::kEq, 3),
       rel::Predicate::ColumnColumn(1, rel::CompareOp::kEq, 4)});
  rel::Relation nested = rel::NestedLoopJoin(left, right, *pred);
  EXPECT_EQ(serial.NumTuples(), nested.NumTuples());
}

TEST(ParallelOps, HashJoinWithResidualMatchesSerial) {
  const std::vector<rel::JoinKey> keys = {{0, 0}};
  auto residual =
      rel::Predicate::ColumnColumn(2, rel::CompareOp::kLt, 5);  // l.v < r.v
  for (size_t threads : kThreads) {
    exec::ThreadPool pool(threads);
    rel::Relation left = MakeInts("l", 500, 7, 16);
    rel::Relation right = MakeInts("r", 400, 8, 16);
    ExpectIdentical(rel::HashJoin(left, right, keys, residual),
                    exec::HashJoin(Ctx(&pool), left, right, keys, residual));
  }
}

TEST(ParallelOps, HashJoinEmptySides) {
  const std::vector<rel::JoinKey> keys = {{0, 0}};
  exec::ThreadPool pool(2);
  rel::Relation empty("e", rel::Schema::FromNames({"k", "j", "v"}));
  rel::Relation full = MakeInts("f", 200, 9, 8);
  ExpectIdentical(rel::HashJoin(empty, full, keys),
                  exec::HashJoin(Ctx(&pool), empty, full, keys));
  ExpectIdentical(rel::HashJoin(full, empty, keys),
                  exec::HashJoin(Ctx(&pool), full, empty, keys));
}

TEST(ParallelOps, DistinctMatchesSerial) {
  for (size_t threads : kThreads) {
    exec::ThreadPool pool(threads);
    for (size_t n : kSizes) {
      rel::Relation in = MakeInts("in", n, 10, 5);
      // Drop the unique v column so duplicates actually occur.
      rel::Relation narrow = rel::Project(in, {0, 1});
      ExpectIdentical(rel::Distinct(narrow),
                      exec::Distinct(Ctx(&pool), narrow));
    }
  }
}

TEST(ParallelOps, DistinctAllDuplicates) {
  exec::ThreadPool pool(8);
  rel::Relation in("in", rel::Schema::FromNames({"a"}));
  for (int i = 0; i < 500; ++i) in.AppendUnchecked({Value::Int(7)});
  rel::Relation out = exec::Distinct(Ctx(&pool), in);
  ASSERT_EQ(out.NumTuples(), 1u);
  ExpectIdentical(rel::Distinct(in), out);
}

TEST(ParallelOps, AggregateMatchesSerial) {
  const std::vector<size_t> group_by = {0};
  const std::vector<rel::AggSpec> aggs = {
      {rel::AggFn::kCount, 0, "n"},   {rel::AggFn::kSum, 2, "sum_v"},
      {rel::AggFn::kMin, 2, "min_v"}, {rel::AggFn::kMax, 2, "max_v"},
      {rel::AggFn::kAvg, 2, "avg_v"}};
  for (size_t threads : kThreads) {
    exec::ThreadPool pool(threads);
    for (size_t n : kSizes) {
      rel::Relation in = MakeInts("in", n, 11, 7);
      ExpectIdentical(rel::Aggregate(in, group_by, aggs),
                      exec::Aggregate(Ctx(&pool), in, group_by, aggs));
    }
  }
}

TEST(ParallelOps, AggregateNoGroupBySingleRow) {
  exec::ThreadPool pool(4);
  const std::vector<rel::AggSpec> aggs = {{rel::AggFn::kCount, 0, "n"},
                                          {rel::AggFn::kSum, 2, "s"}};
  for (size_t n : kSizes) {
    rel::Relation in = MakeInts("in", n, 12, 9);
    ExpectIdentical(rel::Aggregate(in, {}, aggs),
                    exec::Aggregate(Ctx(&pool), in, {}, aggs));
  }
}

TEST(ParallelOps, SerialFallbackWithoutPool) {
  // A default context (no pool) must take the serial path and still be
  // correct.
  exec::ExecContext ctx;
  rel::Relation in = MakeInts("in", 100, 13, 6);
  auto pred = rel::Predicate::ColumnConst(0, rel::CompareOp::kGe,
                                          Value::Int(3));
  ExpectIdentical(rel::Select(in, *pred), exec::Select(ctx, in, *pred));
}

// ---------------------------------------------------------------------------
// Execution monitor: concurrent remote fetches.

dbms::Database TwoTableDb() {
  dbms::Database db;
  rel::Relation b1("b1", rel::Schema::FromNames({"a", "b"}));
  rel::Relation b2("b2", rel::Schema::FromNames({"a", "b"}));
  for (int i = 0; i < 30; ++i) {
    b1.AppendUnchecked({Value::Int(i % 6), Value::Int(i)});
    b2.AppendUnchecked({Value::Int(i), Value::Int(i + 100)});
  }
  BRAID_CHECK_OK(db.AddTable(std::move(b1)));
  BRAID_CHECK_OK(db.AddTable(std::move(b2)));
  return db;
}

cms::Plan TwoRemotePlan() {
  cms::Plan plan;
  plan.query = caql::ParseCaql("q(X, Z) :- b1(X, Y) & b2(Y, Z)").value();
  cms::PlanSource s1;
  s1.kind = cms::PlanSource::Kind::kRemote;
  s1.remote_query = caql::ParseCaql("s1(X, Y) :- b1(X, Y)").value();
  s1.remote_vars = {"X", "Y"};
  cms::PlanSource s2;
  s2.kind = cms::PlanSource::Kind::kRemote;
  s2.remote_query = caql::ParseCaql("s2(Y, Z) :- b2(Y, Z)").value();
  s2.remote_vars = {"Y", "Z"};
  plan.sources.push_back(std::move(s1));
  plan.sources.push_back(std::move(s2));
  return plan;
}

TEST(MonitorOverlap, ConcurrentFetchesReduceWallClock) {
  // Make each simulated fetch physically sleep its modeled cost; two
  // fetches run back-to-back without a pool and concurrently with one.
  dbms::NetworkModel net;
  net.msg_latency_ms = 25.0;
  net.wall_clock_scale = 1.0;
  dbms::RemoteDbms remote(TwoTableDb(), net, dbms::DbmsCostModel{});
  cms::RemoteDbmsInterface rdi(&remote);
  cms::CacheManager cache(1 << 20, 4);
  cms::Plan plan = TwoRemotePlan();

  auto run = [&](cms::ExecutionMonitor& monitor) {
    auto start = std::chrono::steady_clock::now();
    auto outcome = monitor.ExecutePlan(plan);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    return std::make_pair(std::move(outcome).value(), ms);
  };

  cms::ExecutionMonitor serial(&cache, &rdi, 0.01, /*parallel=*/false);
  auto [s_out, s_ms] = run(serial);

  exec::ThreadPool pool(2);
  cms::ExecutionMonitor parallel(&cache, &rdi, 0.01, /*parallel=*/true,
                                 exec::ExecContext{&pool});
  auto [p_out, p_ms] = run(parallel);

  // Same result either way (same deterministic source order).
  ExpectIdentical(s_out.result, p_out.result);
  EXPECT_EQ(s_out.result.NumTuples(), 30u);
  // Both fetches sleep >= 50ms; concurrent execution must save a large
  // fraction of one fetch. Comparative bound keeps this robust under
  // sanitizer and CI load.
  EXPECT_LT(p_ms, s_ms * 0.8)
      << "serial " << s_ms << "ms, parallel " << p_ms << "ms";
  // The reported timing stays on the analytic model, identical modulo the
  // parallel-overlap formula — not the measured wall time.
  EXPECT_DOUBLE_EQ(s_out.remote_ms, p_out.remote_ms);
}

TEST(MonitorOverlap, FetchErrorWithConcurrencyIsReportedCleanly) {
  dbms::NetworkModel net;
  net.wall_clock_scale = 0.0;
  dbms::RemoteDbms remote(TwoTableDb(), net, dbms::DbmsCostModel{});
  cms::RemoteDbmsInterface rdi(&remote);
  cms::CacheManager cache(1 << 20, 4);

  cms::Plan plan = TwoRemotePlan();
  // Second source queries a table the remote does not have.
  plan.sources[1].remote_query =
      caql::ParseCaql("s2(Y, Z) :- nosuch(Y, Z)").value();

  exec::ThreadPool pool(2);
  cms::ExecutionMonitor monitor(&cache, &rdi, 0.01, true,
                                exec::ExecContext{&pool});
  auto outcome = monitor.ExecutePlan(plan);
  EXPECT_FALSE(outcome.ok());
}

}  // namespace
}  // namespace braid
