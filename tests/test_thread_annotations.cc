// Tests for the annotated concurrency primitives in common/mutex.h: the
// Mutex/MutexLock/CondVar wrappers (exercised cross-thread, so the TSan CI
// job validates the wrappers do in fact synchronize) and the
// SequenceChecker capability behind BRAID_SINGLE_THREAD, including its
// abort-on-cross-thread-misuse contract (death test). Components no
// longer use SequenceChecker — the CMS runs multi-session with real
// locking — so the component-level death tests are replaced by real
// concurrency tests (see CacheManagerConcurrency below and
// tests/test_session.cc).

#include "common/mutex.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "caql/caql_query.h"
#include "cms/cache_element.h"
#include "cms/cache_manager.h"
#include "common/status.h"
#include "dbms/remote_dbms.h"
#include "relational/relation.h"
#include "relational/value.h"

namespace braid {
namespace {

TEST(MutexTest, MutualExclusionAcrossThreads) {
  Mutex mu;
  int counter = 0;  // guarded by mu (locally)
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, TryLockReflectsOwnership) {
  Mutex mu;
  mu.Lock();
  bool acquired = true;
  std::thread other([&mu, &acquired] { acquired = mu.TryLock(); });
  other.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(CondVarTest, WaitReleasesAndReacquiresTheMutex) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool observed = false;

  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(mu);
    // The mutex must be held again here: the setter's critical section
    // finished before we could read `ready` as true.
    observed = ready;
  });

  {
    // If Wait failed to release the mutex this Lock would deadlock.
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  const bool notified = cv.WaitFor(mu, std::chrono::milliseconds(5));
  EXPECT_FALSE(notified);
}

TEST(CondVarTest, NotifyOneWakesAWaiter) {
  Mutex mu;
  CondVar cv;
  int stage = 0;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (stage == 0) cv.Wait(mu);
    stage = 2;
  });
  {
    MutexLock lock(&mu);
    stage = 1;
  }
  cv.NotifyOne();
  waiter.join();
  MutexLock lock(&mu);
  EXPECT_EQ(stage, 2);
}

TEST(SequenceCheckerTest, SameThreadUseIsFine) {
  SequenceChecker checker;
  for (int i = 0; i < 100; ++i) checker.Check();
}

TEST(SequenceCheckerTest, DetachAllowsHandoffToAnotherThread) {
  SequenceChecker checker;
  checker.Check();  // bind to this thread
  checker.Detach();
  bool ok = false;
  std::thread other([&] {
    checker.Check();  // rebinds to `other`
    checker.Check();
    ok = true;
  });
  other.join();
  EXPECT_TRUE(ok);
  // Bound to `other` now; this thread must not touch it again without a
  // Detach. (Doing so would abort — covered by the death test below.)
  checker.Detach();
  checker.Check();
}

TEST(SequenceCheckerTest, CopyDoesNotInheritTheBinding) {
  SequenceChecker original;
  original.Check();  // bind original to this thread
  SequenceChecker copy(original);
  bool ok = false;
  std::thread other([&copy, &ok] {
    copy.Check();  // fresh binding; must not abort
    ok = true;
  });
  other.join();
  EXPECT_TRUE(ok);
}

TEST(SequenceCheckerDeathTest, CrossThreadMisuseAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SequenceChecker checker;
        checker.Check();  // bind to this thread
        std::thread intruder([&checker] { checker.Check(); });
        intruder.join();
      },
      "single-threaded component accessed from a second thread");
}

cms::CacheElementPtr MakeManagerElement(const std::string& id,
                                        const std::string& def,
                                        size_t rows) {
  auto q = caql::ParseCaql(def);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  auto ext = std::make_shared<rel::Relation>(
      id, rel::Schema::FromNames({"x", "y"}));
  for (size_t i = 0; i < rows; ++i) {
    ext->AppendUnchecked({rel::Value::Int(static_cast<int64_t>(i)),
                          rel::Value::Int(static_cast<int64_t>(i * 2))});
  }
  return std::make_shared<cms::CacheElement>(id, q.value(), ext);
}

TEST(CacheManagerConcurrency, ParallelInsertsHoldTheBudgetWithNoLostUpdates) {
  // Replaces the old SequenceCheckerDeathTest.CacheManagerAbortsOnCross-
  // ThreadUse: the manager used to abort on cross-thread use; it is now
  // fully concurrent (striped model, atomic clock/stats), so hammering it
  // from several threads must leave the footprint within budget and the
  // stats balanced, with every surviving element findable.
  const size_t unit =
      MakeManagerElement("probe", "p(X, Y) :- b(X, Y)", 8)->ByteSize();
  cms::CacheManager manager(/*budget_bytes=*/unit * 6 + unit / 2,
                            /*replacement_horizon=*/4);
  constexpr int kThreads = 4;
  constexpr int kInsertsPerThread = 60;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&manager, w] {
      for (int i = 0; i < kInsertsPerThread; ++i) {
        const std::string tag =
            "d" + std::to_string(w) + "_" + std::to_string(i);
        EXPECT_TRUE(manager.Insert(MakeManagerElement(
            "E_" + tag, tag + "(X, Y) :- b" + tag + "(X, Y)", 8)));
        manager.Touch("E_" + tag);
        manager.Tick();
      }
    });
  }
  for (std::thread& t : writers) t.join();

  EXPECT_LE(manager.model().TotalBytes(), manager.budget_bytes());
  EXPECT_EQ(manager.stats().insertions.load(),
            static_cast<size_t>(kThreads * kInsertsPerThread));
  EXPECT_EQ(manager.clock(),
            static_cast<uint64_t>(kThreads * kInsertsPerThread));
  // insertions - evictions elements remain resident, and each is intact.
  const auto elements = manager.model().elements();
  EXPECT_EQ(elements.size(), manager.stats().insertions.load() -
                                 manager.stats().evictions.load());
  for (const auto& [id, element] : elements) {
    EXPECT_EQ(manager.model().Find(id), element);
    EXPECT_TRUE(element->is_materialized());
  }
}

TEST(RemoteStatsSnapshot, ConcurrentExecutesYieldConsistentSnapshots) {
  // Regression for a guarded-field gap the annotation sweep surfaced:
  // RemoteDbms::stats() used to return a reference into state mutated by
  // concurrent Execute calls (pool fetches, async prefetches), so a
  // reader could observe a half-updated struct — e.g. `queries` bumped
  // but `messages` not yet. It now returns a snapshot taken under the
  // stats mutex, so every observed snapshot reflects a whole number of
  // identical queries.
  dbms::Database db;
  rel::Relation t("t", rel::Schema::FromNames({"a", "b"}));
  for (int i = 0; i < 32; ++i) {
    t.AppendUnchecked({rel::Value::Int(i), rel::Value::Int(i * 2)});
  }
  BRAID_CHECK_OK(db.AddTable(std::move(t)));
  dbms::RemoteDbms remote(std::move(db));

  dbms::SqlQuery scan;
  scan.from = {"t"};

  // One warmup query establishes the per-query stat deltas (the scan is
  // identical every time, so every Execute adds exactly these).
  BRAID_CHECK_OK(remote.Execute(scan));
  const dbms::RemoteStats unit = remote.stats();
  ASSERT_EQ(unit.queries, 1u);
  ASSERT_GT(unit.messages, 0u);
  ASSERT_GT(unit.tuples_shipped, 0u);

  constexpr int kThreads = 4;
  constexpr int kExecsPerThread = 200;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&remote, &scan] {
      for (int i = 0; i < kExecsPerThread; ++i) {
        BRAID_CHECK_OK(remote.Execute(scan));
      }
    });
  }

  const size_t target = 1 + kThreads * kExecsPerThread;
  size_t snapshots = 0;
  while (true) {
    const dbms::RemoteStats s = remote.stats();
    ++snapshots;
    // Torn reads break these equalities; consistent snapshots cannot.
    EXPECT_EQ(s.messages, s.queries * unit.messages);
    EXPECT_EQ(s.tuples_shipped, s.queries * unit.tuples_shipped);
    EXPECT_EQ(s.bytes_shipped, s.queries * unit.bytes_shipped);
    if (s.queries >= target) break;
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(remote.stats().queries, target);
  EXPECT_GT(snapshots, 1u);
}

TEST(CheckOk, PassesThroughOkStatusAndResult) {
  BRAID_CHECK_OK(Status::Ok());
  BRAID_CHECK_OK(Result<int>(42));
}

TEST(CheckOkDeathTest, AbortsWithTheFailedExpressionAndStatus) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(BRAID_CHECK_OK(Status::NotFound("table 'ghost' missing")),
               "BRAID_CHECK_OK.*failed: NotFound: table 'ghost' missing");
  EXPECT_DEATH(BRAID_CHECK_OK(Result<int>(Status::ParseError("bad rule"))),
               "BRAID_CHECK_OK.*failed: ParseError: bad rule");
}

}  // namespace
}  // namespace braid
