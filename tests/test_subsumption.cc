// Tests for the CMS subsumption algorithm (paper §5.3.2), including the
// paper's worked examples and a soundness property: answering a query
// through a subsumption match + residual operations must equal evaluating
// the query directly against the database.

#include <gtest/gtest.h>

#include "caql/caql_query.h"
#include "cms/query_processor.h"
#include "cms/subsumption.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace braid::cms {
namespace {

using caql::CaqlQuery;
using caql::ParseCaql;

CaqlQuery Q(const std::string& text) {
  auto r = ParseCaql(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.value();
}

TEST(ComparisonImplied, GroundEvaluation) {
  EXPECT_TRUE(ComparisonImplied({}, logic::Atom("<", {logic::Term::Int(1),
                                                      logic::Term::Int(2)})));
  EXPECT_FALSE(ComparisonImplied({}, logic::Atom("<", {logic::Term::Int(2),
                                                       logic::Term::Int(1)})));
}

TEST(ComparisonImplied, SyntacticAndReversed) {
  logic::Atom known("<", {logic::Term::Var("X"), logic::Term::Var("Y")});
  EXPECT_TRUE(ComparisonImplied({known}, known));
  logic::Atom reversed(">", {logic::Term::Var("Y"), logic::Term::Var("X")});
  EXPECT_TRUE(ComparisonImplied({known}, reversed));
}

TEST(ComparisonImplied, IntervalReasoning) {
  logic::Atom lt3("<", {logic::Term::Var("X"), logic::Term::Int(3)});
  logic::Atom lt5("<", {logic::Term::Var("X"), logic::Term::Int(5)});
  logic::Atom le3("<=", {logic::Term::Var("X"), logic::Term::Int(3)});
  logic::Atom eq2("=", {logic::Term::Var("X"), logic::Term::Int(2)});
  logic::Atom ge1(">=", {logic::Term::Var("X"), logic::Term::Int(1)});
  EXPECT_TRUE(ComparisonImplied({lt3}, lt5));
  EXPECT_FALSE(ComparisonImplied({lt5}, lt3));
  EXPECT_TRUE(ComparisonImplied({lt3}, le3));
  EXPECT_TRUE(ComparisonImplied({eq2}, lt3));
  EXPECT_TRUE(ComparisonImplied({eq2}, ge1));
  EXPECT_FALSE(ComparisonImplied({ge1}, eq2));
  // Reversed-argument normalization: 3 > X is X < 3.
  logic::Atom rev(">", {logic::Term::Int(3), logic::Term::Var("X")});
  EXPECT_TRUE(ComparisonImplied({rev}, lt5));
}

TEST(Subsumption, ExactMatchIsFullWithNoSelections) {
  CaqlQuery def = Q("e(X, Y) :- b(X, Y)");
  CaqlQuery query = Q("q(A, B) :- b(A, B)");
  auto m = ComputeSubsumption(def, query);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->full);
  EXPECT_TRUE(m->selections.empty());
  EXPECT_EQ(m->var_to_column.at("A"), 0u);
  EXPECT_EQ(m->var_to_column.at("B"), 1u);
}

TEST(Subsumption, ConstantInQueryBecomesResidualSelection) {
  // Paper §5.3.2 step 1: E1 = b21(X,Y) & b22(Y,Z) considered for
  // Qc1 = b21(X,2) with unifier (,Y=2).
  CaqlQuery def = Q("e(X, Y) :- b21(X, Y)");
  CaqlQuery query = Q("q(A) :- b21(A, 2)");
  auto m = ComputeSubsumption(def, query);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->full);
  ASSERT_EQ(m->selections.size(), 1u);
  EXPECT_EQ(m->selections[0].column, 1u);
  EXPECT_FALSE(m->selections[0].rhs_is_column);
  EXPECT_EQ(m->selections[0].constant, rel::Value::Int(2));
}

TEST(Subsumption, MoreRestrictiveElementRejected) {
  // E2 = b21(3,Y) cannot derive b21(X,2) (constant mismatch direction).
  CaqlQuery def = Q("e(Y) :- b21(3, Y)");
  CaqlQuery query = Q("q(X) :- b21(X, 2)");
  EXPECT_FALSE(ComputeSubsumption(def, query).has_value());
}

TEST(Subsumption, ExtraJoinInElementRejected) {
  // Paper step 2: an element with an extra restricting predicate cannot be
  // used. E1 = b21(X,Y) & b22(Y,Z) vs query over b21 alone.
  CaqlQuery def = Q("e(X, Y) :- b21(X, Y) & b22(Y, Z)");
  CaqlQuery query = Q("q(A, B) :- b21(A, B)");
  EXPECT_FALSE(ComputeSubsumption(def, query).has_value());
}

TEST(Subsumption, PaperExampleE3ConsideredForQ1b) {
  // E3 = b21(X,2) & b23(2,Z); Q1b = b23(2,3) & b21(X,2) — usable.
  // Q1a = b21(X,2) & b22(2,Y) — not usable (b22 not in E3).
  CaqlQuery e3 = Q("e(X, Z) :- b21(X, 2) & b23(2, Z)");
  CaqlQuery q1b = Q("q(X) :- b23(2, 3) & b21(X, 2)");
  auto m = ComputeSubsumption(e3, q1b);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->full);
  // Z=3 becomes a residual selection on E3's second head column.
  bool found = false;
  for (const ResidualSelection& s : m->selections) {
    if (s.column == 1 && !s.rhs_is_column &&
        s.constant == rel::Value::Int(3)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);

  CaqlQuery q1a = Q("q(X) :- b21(X, 2) & b22(2, Y)");
  auto partial = ComputeSubsumption(e3, q1a);
  // E3's b23 atom has no image in q1a: no usable mapping.
  EXPECT_FALSE(partial.has_value());
}

TEST(Subsumption, PartialCoverageOverJoin) {
  // Element covers one atom of a two-atom query.
  CaqlQuery def = Q("e(X, Y) :- b2(X, Y)");
  CaqlQuery query = Q("q(A, C) :- b2(A, B) & b3(B, C)");
  auto m = ComputeSubsumption(def, query);
  ASSERT_TRUE(m.has_value());
  EXPECT_FALSE(m->full);
  EXPECT_EQ(m->covered.size(), 1u);
  // Join variable B must be exported for the residual join.
  EXPECT_TRUE(m->var_to_column.count("B"));
  EXPECT_TRUE(m->var_to_column.count("A"));
}

TEST(Subsumption, Example1GeneralizedViewAnswersInstance) {
  // §5.3.1/§5.3.2: cache element for the generalized d2 answers the
  // instance d2(X, c6).
  CaqlQuery general = Q("d2(X, Y) :- b2(X, Z) & b3(Z, c2, Y)");
  CaqlQuery instance = Q("d2(X, c6) :- b2(X, Z) & b3(Z, c2, c6)");
  auto m = ComputeSubsumption(general, instance);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->full);
  ASSERT_EQ(m->selections.size(), 1u);
  EXPECT_EQ(m->selections[0].column, 1u);  // Y column selected = c6
  EXPECT_EQ(m->selections[0].constant, rel::Value::String("c6"));
}

TEST(Subsumption, CacheElementsE11E12E13) {
  // §5.3.2 closing example: for d2(X,c6) = b2(X,Z) & b3(Z,c2,c6), the
  // elements E12: b3(X,c2,Y) and E13: b3(X,Y,Z) can compute the b3 part.
  CaqlQuery query = Q("d2(X, c6) :- b2(X, Z) & b3(Z, c2, c6)");
  CaqlQuery e12 = Q("e12(X, Y) :- b3(X, c2, Y)");
  CaqlQuery e13 = Q("e13(X, Y, Z) :- b3(X, Y, Z)");
  CaqlQuery e11 = Q("e11(X, Y) :- b2(X, c1) & b3(Y, c2, c6)");

  auto m12 = ComputeSubsumption(e12, query);
  ASSERT_TRUE(m12.has_value());
  EXPECT_FALSE(m12->full);
  EXPECT_EQ(m12->covered.size(), 1u);

  auto m13 = ComputeSubsumption(e13, query);
  ASSERT_TRUE(m13.has_value());
  EXPECT_FALSE(m13->full);
  // E13 needs two residual selections (c2 and c6) vs one for E12.
  EXPECT_GT(m13->selections.size(), m12->selections.size());

  // E11 constrains b2's second attribute to c1, which the query does not:
  // its b2 atom has no valid image (c1 vs variable Z), so only... in fact
  // b2(X,c1) cannot map onto b2(X,Z) because constants in the element may
  // not map to query variables.
  EXPECT_FALSE(ComputeSubsumption(e11, query).has_value());
}

TEST(Subsumption, RepeatedElementVarsRequireEqualitySelection) {
  CaqlQuery def = Q("e(X, Y) :- b(X, Y)");
  CaqlQuery query = Q("q(A) :- b(A, A)");
  auto m = ComputeSubsumption(def, query);
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(m->selections.size(), 1u);
  EXPECT_TRUE(m->selections[0].rhs_is_column);
}

TEST(Subsumption, NeededVariableProjectedAwayRejected) {
  // Element projects Y away but the query's head needs it.
  CaqlQuery def = Q("e(X) :- b(X, Y)");
  CaqlQuery query = Q("q(A, B) :- b(A, B)");
  EXPECT_FALSE(ComputeSubsumption(def, query).has_value());
}

TEST(Subsumption, ExistentialVariableMayBeProjectedAway) {
  // Query does not need B, so the element's projection is fine.
  CaqlQuery def = Q("e(X) :- b(X, Y)");
  CaqlQuery query = Q("q(A) :- b(A, B)");
  auto m = ComputeSubsumption(def, query);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->full);
}

TEST(Subsumption, ElementComparisonMustBeImplied) {
  CaqlQuery def = Q("e(X, Y) :- b(X, Y) & Y > 5");
  CaqlQuery narrower = Q("q(A, B) :- b(A, B) & B > 10");
  CaqlQuery wider = Q("q(A, B) :- b(A, B) & B > 2");
  CaqlQuery none = Q("q(A, B) :- b(A, B)");
  EXPECT_TRUE(ComputeSubsumption(def, narrower).has_value());
  EXPECT_FALSE(ComputeSubsumption(def, wider).has_value());
  EXPECT_FALSE(ComputeSubsumption(def, none).has_value());
}

TEST(Subsumption, QueryComparisonDoesNotBlockMatch) {
  CaqlQuery def = Q("e(X, Y) :- b(X, Y)");
  CaqlQuery query = Q("q(A) :- b(A, B) & B < 7");
  auto m = ComputeSubsumption(def, query);
  ASSERT_TRUE(m.has_value());
  // B feeds the residual comparison, so it must be exported.
  EXPECT_TRUE(m->var_to_column.count("B"));
}

TEST(Subsumption, EvaluableRequiresExactMatch) {
  CaqlQuery def = Q("e(X, W) :- b(X, Y) & plus(X, Y, W)");
  CaqlQuery same = Q("e(A, C) :- b(A, B) & plus(A, B, C)");
  CaqlQuery different = Q("q(A, C) :- b(A, B) & plus(B, A, C)");
  EXPECT_TRUE(ComputeSubsumption(def, same).has_value());
  EXPECT_FALSE(ComputeSubsumption(def, different).has_value());
}

TEST(Subsumption, SelfJoinQueryAgainstSingleAtomElement) {
  CaqlQuery def = Q("e(X, Y) :- b(X, Y)");
  CaqlQuery query = Q("q(A, C) :- b(A, B) & b(B, C)");
  auto m = ComputeSubsumption(def, query);
  ASSERT_TRUE(m.has_value());
  // One atom covered; join var B exported.
  EXPECT_EQ(m->covered.size(), 1u);
  EXPECT_TRUE(m->var_to_column.count("B"));
}

// ---------------------------------------------------------------------------
// Soundness property: for randomly generated (element, query, database)
// triples where the match succeeds fully, evaluating the query directly
// equals evaluating it through the element extension + residuals.

struct SoundnessCase {
  uint64_t seed;
};

class SubsumptionSoundness : public ::testing::TestWithParam<SoundnessCase> {
};

TEST_P(SubsumptionSoundness, ResidualDerivationMatchesDirect) {
  Rng rng(GetParam().seed);
  // Database: one binary relation b over a small domain.
  auto b = std::make_shared<rel::Relation>("b",
                                           rel::Schema::FromNames({"x", "y"}));
  for (int i = 0; i < 60; ++i) {
    b->AppendUnchecked({rel::Value::Int(rng.Uniform(0, 5)),
                        rel::Value::Int(rng.Uniform(0, 5))});
  }

  // Element: the full relation (all-variable view).
  CaqlQuery def = Q("e(X, Y) :- b(X, Y)");
  LocalWork work;
  QueryProcessor::AtomResolver resolver =
      [&b](const logic::Atom& atom)
      -> std::shared_ptr<const rel::Relation> {
    return atom.predicate == "b" ? b : nullptr;
  };
  auto ext = QueryProcessor::Evaluate(def, resolver, &work);
  ASSERT_TRUE(ext.ok());

  // Query: b with a random constant in a random position.
  const int64_t c = rng.Uniform(0, 5);
  const bool first_pos = rng.Bernoulli(0.5);
  CaqlQuery query = first_pos
                        ? Q("q(A) :- b(" + std::to_string(c) + ", A)")
                        : Q("q(A) :- b(A, " + std::to_string(c) + ")");

  // Direct evaluation.
  auto direct = QueryProcessor::Evaluate(query, resolver, &work);
  ASSERT_TRUE(direct.ok());

  // Via subsumption: apply residual selections to the extension, project
  // the needed variable.
  auto m = ComputeSubsumption(def, query);
  ASSERT_TRUE(m.has_value());
  ASSERT_TRUE(m->full);
  rel::Relation derived("derived", ext->schema());
  for (const rel::Tuple& t : ext->tuples()) {
    bool keep = true;
    for (const ResidualSelection& s : m->selections) {
      const rel::Value& lhs = t[s.column];
      const rel::Value rhs = s.rhs_is_column ? t[s.rhs_column] : s.constant;
      if (!rel::EvalCompare(s.op, lhs, rhs)) {
        keep = false;
        break;
      }
    }
    if (keep) derived.AppendUnchecked(t);
  }
  const size_t col = m->var_to_column.at("A");
  rel::Relation projected = rel::Project(derived, {col});

  std::multiset<std::string> want, got;
  for (const rel::Tuple& t : direct->tuples()) {
    want.insert(rel::TupleToString(t));
  }
  for (const rel::Tuple& t : projected.tuples()) {
    got.insert(rel::TupleToString(t));
  }
  EXPECT_EQ(got, want);
}

TEST(Subsumption, ViableMappingBeyondOldTruncationCapFound) {
  // Element whose head drops Y: mapping its single atom onto a query atom
  // that binds Y to a constant can never survive the downstream viability
  // checks. A query leading with 39 such decoy atoms before the one
  // viable target historically exhausted the flat 32-assignment cap in
  // DFS order and silently dropped the only usable match, forcing a
  // needless remote fetch. The hopeless branches are pruned now.
  CaqlQuery def = Q("starts(X) :- edge(X, Y)");
  CaqlQuery query;
  query.name = "q";
  query.head_args = {logic::Term::Var("Z")};
  for (int i = 0; i < 39; ++i) {
    query.body.push_back(
        logic::Atom("edge", {logic::Term::Int(i), logic::Term::Int(100 + i)}));
  }
  query.body.push_back(
      logic::Atom("edge", {logic::Term::Var("Z"), logic::Term::Var("W")}));
  ASSERT_TRUE(query.Validate().ok());

  const uint64_t truncations_before =
      obs::MetricsRegistry::Global().CounterValue("subsumption.truncations");
  auto all = ComputeSubsumptionAll(def, query);
  bool found = false;
  for (const SubsumptionMatch& m : all) {
    if (m.covered == std::vector<size_t>{39} &&
        m.var_to_column.count("Z") > 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Pruning means the decoys are never enumerated: no truncation.
  EXPECT_EQ(
      obs::MetricsRegistry::Global().CounterValue("subsumption.truncations"),
      truncations_before);
}

TEST(Subsumption, TruncationAtCapIsCounted) {
  // 35 x 35 independent assignments exceed the (raised) result cap; the
  // search must report the truncation to the metrics registry instead of
  // silently returning a partial enumeration.
  CaqlQuery def = Q("e(A, B, C, D) :- edge(A, B) & foo(C, D)");
  CaqlQuery query;
  query.name = "q";
  query.head_args = {logic::Term::Var("A0")};
  for (int i = 0; i < 35; ++i) {
    const std::string s = std::to_string(i);
    query.body.push_back(logic::Atom(
        "edge", {logic::Term::Var("A" + s), logic::Term::Var("B" + s)}));
    query.body.push_back(logic::Atom(
        "foo", {logic::Term::Var("C" + s), logic::Term::Var("D" + s)}));
  }
  ASSERT_TRUE(query.Validate().ok());

  const uint64_t before =
      obs::MetricsRegistry::Global().CounterValue("subsumption.truncations");
  auto all = ComputeSubsumptionAll(def, query);
  EXPECT_FALSE(all.empty());
  EXPECT_GT(
      obs::MetricsRegistry::Global().CounterValue("subsumption.truncations"),
      before);
}

TEST(Subsumption, ExactlyAtMappingCapNoTruncation) {
  // A single-atom element against a query with exactly 1024 independent
  // p-atoms yields exactly kMaxResults mappings: the cap is reached but
  // never exceeded, so the truncation counter must not move and every
  // covered set is represented.
  CaqlQuery def = Q("v(A, B) :- p(A, B)");
  CaqlQuery query;
  query.name = "q";
  query.head_args = {logic::Term::Var("X0")};
  for (int i = 0; i < 1024; ++i) {
    const std::string s = std::to_string(i);
    query.body.push_back(logic::Atom(
        "p", {logic::Term::Var("X" + s), logic::Term::Var("Y" + s)}));
  }
  ASSERT_TRUE(query.Validate().ok());

  const uint64_t before =
      obs::MetricsRegistry::Global().CounterValue("subsumption.truncations");
  auto all = ComputeSubsumptionAll(def, query);
  EXPECT_EQ(all.size(), 1024u);
  EXPECT_EQ(
      obs::MetricsRegistry::Global().CounterValue("subsumption.truncations"),
      before);
}

TEST(Subsumption, OneBeyondMappingCapTruncatesButStillMatches) {
  // 1025 candidate mappings: the 1025th is cut off, the counter records
  // the truncation, and a usable match — including one binding the head
  // variable of the query — survives below the cap.
  CaqlQuery def = Q("v(A, B) :- p(A, B)");
  CaqlQuery query;
  query.name = "q";
  query.head_args = {logic::Term::Var("X0")};
  for (int i = 0; i < 1025; ++i) {
    const std::string s = std::to_string(i);
    query.body.push_back(logic::Atom(
        "p", {logic::Term::Var("X" + s), logic::Term::Var("Y" + s)}));
  }
  ASSERT_TRUE(query.Validate().ok());

  const uint64_t before =
      obs::MetricsRegistry::Global().CounterValue("subsumption.truncations");
  auto all = ComputeSubsumptionAll(def, query);
  EXPECT_EQ(all.size(), 1024u);
  EXPECT_GT(
      obs::MetricsRegistry::Global().CounterValue("subsumption.truncations"),
      before);
  bool head_match = false;
  for (const SubsumptionMatch& m : all) {
    if (m.var_to_column.count("X0") > 0 &&
        m.covered == std::vector<size_t>{0}) {
      head_match = true;
    }
  }
  EXPECT_TRUE(head_match);
}

TEST(Subsumption, DistinctElementNeverServesBagQuery) {
  // Regression for a transparency bug the differential harness caught
  // (seed 25): a cached SETOF element reused for a BAGOF query loses
  // duplicate multiplicities. SETOF -> BAGOF reuse must be rejected;
  // BAGOF -> SETOF and SETOF -> SETOF remain sound (assembly dedups).
  CaqlQuery set_def = Q("v(A) :- p(A, B)");
  set_def.distinct = true;
  CaqlQuery bag_def = Q("v(A) :- p(A, B)");

  CaqlQuery bag_query = Q("q(X) :- p(X, Y)");
  CaqlQuery set_query = Q("q(X) :- p(X, Y)");
  set_query.distinct = true;

  EXPECT_TRUE(ComputeSubsumptionAll(set_def, bag_query).empty());
  EXPECT_FALSE(ComputeSubsumptionAll(bag_def, bag_query).empty());
  EXPECT_FALSE(ComputeSubsumptionAll(bag_def, set_query).empty());
  EXPECT_FALSE(ComputeSubsumptionAll(set_def, set_query).empty());
}

INSTANTIATE_TEST_SUITE_P(Sweep, SubsumptionSoundness,
                         ::testing::Values(SoundnessCase{1}, SoundnessCase{2},
                                           SoundnessCase{3}, SoundnessCase{4},
                                           SoundnessCase{5}, SoundnessCase{6},
                                           SoundnessCase{7},
                                           SoundnessCase{8}));

}  // namespace
}  // namespace braid::cms
