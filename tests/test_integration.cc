// End-to-end tests of the full BrAID stack: IE pre-analysis → advice →
// CMS (subsumption, caching, lazy evaluation) → remote DBMS simulator.

#include <gtest/gtest.h>

#include <set>

#include "baselines/coupling_modes.h"
#include "braid/braid_system.h"
#include "workload/generators.h"

namespace braid {
namespace {

/// The paper's Example 1 (§4.2.2): rules R1-R3 over base relations b1-b3.
dbms::Database ExampleDatabase() {
  dbms::Database db;
  rel::Relation b1("b1", rel::Schema::FromNames({"a", "b"}));
  b1.AppendUnchecked({rel::Value::String("c1"), rel::Value::Int(1)});
  b1.AppendUnchecked({rel::Value::String("c1"), rel::Value::Int(2)});
  b1.AppendUnchecked({rel::Value::Int(7), rel::Value::Int(3)});
  b1.AppendUnchecked({rel::Value::Int(8), rel::Value::Int(4)});
  rel::Relation b2("b2", rel::Schema::FromNames({"a", "b"}));
  b2.AppendUnchecked({rel::Value::Int(10), rel::Value::Int(20)});
  b2.AppendUnchecked({rel::Value::Int(11), rel::Value::Int(21)});
  b2.AppendUnchecked({rel::Value::Int(12), rel::Value::Int(22)});
  rel::Relation b3("b3", rel::Schema::FromNames({"a", "b", "c"}));
  b3.AppendUnchecked(
      {rel::Value::Int(20), rel::Value::String("c2"), rel::Value::Int(1)});
  b3.AppendUnchecked(
      {rel::Value::Int(21), rel::Value::String("c2"), rel::Value::Int(2)});
  b3.AppendUnchecked(
      {rel::Value::Int(22), rel::Value::String("c3"), rel::Value::Int(2)});
  b3.AppendUnchecked(
      {rel::Value::Int(7), rel::Value::String("c3"), rel::Value::Int(8)});
  BRAID_CHECK_OK(db.AddTable(std::move(b1)));
  BRAID_CHECK_OK(db.AddTable(std::move(b2)));
  BRAID_CHECK_OK(db.AddTable(std::move(b3)));
  return db;
}

const char* kExampleKb = R"(
#base b1(a, b).
#base b2(a, b).
#base b3(a, b, c).
k1(X, Y) :- b1(c1, Y), k2(X, Y).
k2(X, Y) :- b2(X, Z), b3(Z, c2, Y).
k2(X, Y) :- b3(X, c3, Z), b1(Z, Y).
)";

logic::KnowledgeBase ParseKb(const std::string& text) {
  logic::KnowledgeBase kb;
  Status s = logic::ParseProgram(text, &kb);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return kb;
}

std::set<std::string> SolutionSet(const rel::Relation& solutions) {
  std::set<std::string> out;
  for (const rel::Tuple& t : solutions.tuples()) {
    out.insert(rel::TupleToString(t));
  }
  return out;
}

TEST(ExampleOne, InterpretedFindsAllSolutions) {
  // Hand derivation: k1(X,Y) needs b1(c1,Y) → Y ∈ {1,2}.
  //   R2: k2(X,Y) via b2(X,Z) & b3(Z,c2,Y): (10,20,→1), (11,21,→2).
  //   R3: k2(X,Y) via b3(X,c3,Z) & b1(Z,Y): b3(22,c3,2)&b1(2,..)∅;
  //       b3(7,c3,8)&b1(8,4) → k2(7,4) but Y=4 ∉ {1,2}.
  // So k1 = {(10,1), (11,2)}.
  BraidSystem braid(ExampleDatabase(), ParseKb(kExampleKb));
  auto outcome = braid.Ask("k1(X, Y)?");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(SolutionSet(outcome->solutions),
            (std::set<std::string>{"(10, 1)", "(11, 2)"}));
}

TEST(ExampleOne, CompiledMatchesInterpreted) {
  BraidOptions options;
  options.ie.strategy = ie::StrategyKind::kCompiled;
  BraidSystem braid(ExampleDatabase(), ParseKb(kExampleKb), options);
  auto outcome = braid.Ask("k1(X, Y)?");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(SolutionSet(outcome->solutions),
            (std::set<std::string>{"(10, 1)", "(11, 2)"}));
}

TEST(ExampleOne, AdviceContainsViewSpecsAndPath) {
  BraidSystem braid(ExampleDatabase(), ParseKb(kExampleKb));
  auto pre = braid.ie().Analyze(
      logic::ParseQueryAtom("k1(X, Y)?").value());
  ASSERT_TRUE(pre.ok()) << pre.status().ToString();
  // Three view specifications: one per rule-body run (R1's b1 run plus the
  // two k2 alternatives), matching the paper's d1, d2, d3.
  EXPECT_GE(pre->advice.view_specs.size(), 3u);
  EXPECT_NE(pre->advice.path_expression, nullptr);
  std::set<std::string> bases(pre->advice.base_relations.begin(),
                              pre->advice.base_relations.end());
  EXPECT_EQ(bases, (std::set<std::string>{"b1", "b2", "b3"}));
}

TEST(ExampleOne, BoundQueryConstantsPropagate) {
  BraidSystem braid(ExampleDatabase(), ParseKb(kExampleKb));
  auto outcome = braid.Ask("k1(10, Y)?");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(SolutionSet(outcome->solutions), (std::set<std::string>{"(1)"}));
}

TEST(Genealogy, AncestorInterpretedAndCompiledAgree) {
  workload::GenealogyParams params;
  params.people = 120;
  params.roots = 5;
  logic::KnowledgeBase kb = ParseKb(workload::GenealogyKb());

  BraidOptions interp;
  BraidSystem braid_i(workload::MakeGenealogyDatabase(params), ParseKb(workload::GenealogyKb()), interp);
  auto a = braid_i.Ask("ancestor(100, Y)?");
  ASSERT_TRUE(a.ok()) << a.status().ToString();

  BraidOptions comp;
  comp.ie.strategy = ie::StrategyKind::kCompiled;
  BraidSystem braid_c(workload::MakeGenealogyDatabase(params), ParseKb(workload::GenealogyKb()), comp);
  auto b = braid_c.Ask("ancestor(100, Y)?");
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  EXPECT_EQ(SolutionSet(a->solutions), SolutionSet(b->solutions));
  EXPECT_FALSE(a->solutions.empty());
}

TEST(Baselines, AllModesAgreeOnSolutions) {
  using baselines::CouplingMode;
  const CouplingMode modes[] = {
      CouplingMode::kLooseCoupling, CouplingMode::kExactMatchCache,
      CouplingMode::kSingleRelationCache, CouplingMode::kBraidNoAdvice,
      CouplingMode::kBraid};
  std::set<std::string> reference;
  bool first = true;
  for (CouplingMode mode : modes) {
    BraidOptions options;
    options.cms = baselines::ConfigFor(mode, 8 << 20);
    BraidSystem braid(ExampleDatabase(), ParseKb(kExampleKb), options);
    auto outcome = braid.Ask("k1(X, Y)?");
    ASSERT_TRUE(outcome.ok())
        << baselines::CouplingModeName(mode) << ": "
        << outcome.status().ToString();
    if (first) {
      reference = SolutionSet(outcome->solutions);
      first = false;
    } else {
      EXPECT_EQ(SolutionSet(outcome->solutions), reference)
          << baselines::CouplingModeName(mode);
    }
  }
}

TEST(Caching, RepeatedSessionsHitCache) {
  BraidSystem braid(ExampleDatabase(), ParseKb(kExampleKb));
  auto first = braid.Ask("k1(X, Y)?");
  ASSERT_TRUE(first.ok());
  const size_t remote_after_first = braid.remote().stats().queries;
  auto second = braid.Ask("k1(X, Y)?");
  ASSERT_TRUE(second.ok());
  const size_t remote_after_second = braid.remote().stats().queries;
  EXPECT_EQ(SolutionSet(first->solutions), SolutionSet(second->solutions));
  // The second session should answer mostly (or wholly) from cache.
  EXPECT_LE(remote_after_second - remote_after_first,
            remote_after_first / 2 + 1);
}

TEST(SupplierParts, JoinsAndMutexRules) {
  workload::SupplierParams params;
  params.suppliers = 30;
  params.parts = 60;
  params.supplies = 200;
  BraidSystem braid(workload::MakeSupplierDatabase(params),
                    ParseKb(workload::SupplierKb()));
  auto heavy = braid.Ask("heavy_supplier(S, P)?");
  ASSERT_TRUE(heavy.ok()) << heavy.status().ToString();
  auto light = braid.Ask("light_supplier(S, P)?");
  ASSERT_TRUE(light.ok()) << light.status().ToString();
  // Every supplies fact classifies as exactly one of heavy/light.
  std::set<std::string> h = SolutionSet(heavy->solutions);
  std::set<std::string> l = SolutionSet(light->solutions);
  for (const std::string& s : h) {
    EXPECT_EQ(l.count(s), 0u) << s;
  }
  EXPECT_FALSE(h.empty());
  EXPECT_FALSE(l.empty());
}

}  // namespace
}  // namespace braid
