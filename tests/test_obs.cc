// Tests for the observability layer: the span tracer (including spans
// recorded from thread-pool workers, exercised under TSan in CI), the
// metrics registry, and the end-to-end guarantee that every CMS query
// produces a complete span tree with both measured and modeled times.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <future>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "caql/caql_query.h"
#include "cms/cms.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace braid::obs {
namespace {

/// Minimal structural JSON check: non-empty, object-shaped, balanced
/// braces and brackets outside string literals.
bool LooksLikeJson(const std::string& s) {
  if (s.empty() || s.front() != '{') return false;
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

TEST(Metrics, CounterGaugeHistogramBasics) {
  MetricsRegistry registry;
  registry.counter("a.b").Increment();
  registry.counter("a.b").Increment(4);
  EXPECT_EQ(registry.CounterValue("a.b"), 5u);
  EXPECT_EQ(registry.CounterValue("never.touched"), 0u);

  registry.gauge("g").Set(7);
  registry.gauge("g").Add(-2);
  EXPECT_EQ(registry.GaugeValue("g"), 5);

  Histogram& h = registry.histogram("h");
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(100.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 102.0);
  EXPECT_NEAR(h.mean(), 34.0, 1e-9);
  EXPECT_GT(h.Quantile(0.99), h.Quantile(0.5));

  registry.Reset();
  EXPECT_EQ(registry.CounterValue("a.b"), 0u);
  EXPECT_EQ(registry.GaugeValue("g"), 0);
  EXPECT_EQ(registry.histogram("h").count(), 0u);
}

TEST(Metrics, InstrumentHandlesAreStable) {
  MetricsRegistry registry;
  Counter& c1 = registry.counter("x");
  // Force rebalancing of the name map with more instruments.
  for (int i = 0; i < 64; ++i) {
    registry.counter("c" + std::to_string(i)).Increment();
  }
  Counter& c2 = registry.counter("x");
  EXPECT_EQ(&c1, &c2);
}

TEST(Metrics, JsonShape) {
  MetricsRegistry registry;
  registry.counter("cache.evictions").Increment(3);
  registry.gauge("pool.queue_depth").Set(2);
  registry.histogram("task_ms").Observe(1.25);
  const std::string json = registry.ToJson();
  EXPECT_TRUE(LooksLikeJson(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"cache.evictions\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"pool.queue_depth\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"count\""), std::string::npos);

  const std::string path = ::testing::TempDir() + "obs_metrics.json";
  ASSERT_TRUE(registry.WriteJson(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), json);
  std::remove(path.c_str());
}

TEST(Tracer, SpanTreeShapeAndDurations) {
  Tracer tracer;
  SpanId root = tracer.StartSpan("query");
  tracer.Annotate(root, "name", "q1");
  SpanId plan = tracer.StartSpan("plan", root);
  SpanId sub = tracer.StartSpan("subsumption", plan);
  tracer.EndSpan(sub);
  tracer.EndSpan(plan);
  SpanId fetch = tracer.StartSpan("fetch", root);
  tracer.SetModeledMs(fetch, 12.5);
  tracer.EndSpan(fetch);
  tracer.SetModeledMs(root, 12.5);
  tracer.EndSpan(root);

  ASSERT_EQ(tracer.NumSpans(), 4u);
  std::vector<Span> spans = tracer.Snapshot();
  EXPECT_EQ(spans[0].parent, SpanId{0});
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[2].parent, plan);
  EXPECT_EQ(spans[3].parent, root);
  for (const Span& s : spans) {
    EXPECT_FALSE(s.open());
    EXPECT_GE(s.measured_ms, 0) << s.name;
    EXPECT_GE(s.start_ms, 0) << s.name;
  }

  Span found;
  ASSERT_TRUE(tracer.FindSpan("fetch", &found));
  EXPECT_DOUBLE_EQ(found.modeled_ms, 12.5);
  EXPECT_FALSE(tracer.FindSpan("nonexistent", &found));

  const std::string tree = tracer.PrettyTree();
  EXPECT_NE(tree.find("query"), std::string::npos);
  EXPECT_NE(tree.find("subsumption"), std::string::npos);
  EXPECT_NE(tree.find("modeled="), std::string::npos);

  tracer.Clear();
  EXPECT_EQ(tracer.NumSpans(), 0u);
}

TEST(Tracer, JsonExport) {
  Tracer tracer;
  SpanId root = tracer.StartSpan("query");
  tracer.Annotate(root, "name", "with \"quotes\" and \\slashes\\");
  tracer.EndSpan(root);
  const std::string json = tracer.ToJson();
  EXPECT_TRUE(LooksLikeJson(json)) << json;
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"measured_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"modeled_ms\""), std::string::npos);

  const std::string path = ::testing::TempDir() + "obs_trace.json";
  ASSERT_TRUE(tracer.WriteJson(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), json);
  std::remove(path.c_str());
}

TEST(Tracer, SpanScopeToleratesNullTracer) {
  SpanScope scope(nullptr, "anything");
  EXPECT_EQ(scope.id(), SpanId{0});
  scope.SetModeledMs(3.0);
  scope.Annotate("k", "v");
  scope.End();  // no crash, no effect
}

TEST(Tracer, PoolThreadsRecordSpansConcurrently) {
  // The execution monitor records fetch spans from pool workers while
  // the calling thread records prep spans; this is the shape the CI TSan
  // job watches for data races.
  Tracer tracer;
  SpanId root = tracer.StartSpan("query");
  exec::ThreadPool pool(4);
  constexpr int kTasks = 64;
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&tracer, root, i] {
      SpanScope span(&tracer, "fetch", root);
      span.SetModeledMs(static_cast<double>(i));
      span.Annotate("task", std::to_string(i));
    }));
  }
  for (auto& f : futures) f.get();
  tracer.EndSpan(root);

  EXPECT_EQ(tracer.NumSpans(), static_cast<size_t>(kTasks) + 1);
  size_t fetches = 0;
  for (const Span& s : tracer.Snapshot()) {
    if (s.name != "fetch") continue;
    ++fetches;
    EXPECT_EQ(s.parent, root);
    EXPECT_FALSE(s.open());
  }
  EXPECT_EQ(fetches, static_cast<size_t>(kTasks));
  EXPECT_TRUE(LooksLikeJson(tracer.ToJson()));
}

TEST(Tracer, MetricsRegistryConcurrentPublish) {
  // Pool workers hammer one shared counter/histogram while the registry
  // is concurrently queried — the pattern every instrumented subsystem
  // uses against the global registry.
  MetricsRegistry registry;
  exec::ThreadPool pool(4);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([&registry] {
      for (int k = 0; k < 100; ++k) {
        registry.counter("work.items").Increment();
        registry.histogram("work.ms").Observe(0.25);
      }
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(registry.CounterValue("work.items"), 3200u);
  EXPECT_EQ(registry.histogram("work.ms").count(), 3200u);
}

// ---------------------------------------------------------------------------
// End-to-end: the CMS records a complete span tree for every query.

dbms::Database ObsDb() {
  dbms::Database db;
  rel::Relation t("t", rel::Schema::FromNames({"a", "b"}));
  for (int i = 0; i < 20; ++i) {
    t.AppendUnchecked({rel::Value::Int(i % 4), rel::Value::Int(i)});
  }
  BRAID_CHECK_OK(db.AddTable(std::move(t)));
  return db;
}

TEST(CmsTracing, EveryQueryProducesCompleteSpanTree) {
  dbms::RemoteDbms remote(ObsDb());
  cms::Cms cms(&remote, cms::CmsConfig{});

  auto q = caql::ParseCaql("v1(X, Y) :- t(X, Y)").value();
  ASSERT_TRUE(cms.Query(q).ok());

  const std::vector<Span> spans = cms.tracer().Snapshot();
  std::set<std::string> names;
  for (const Span& s : spans) names.insert(s.name);
  for (const char* expected : {"query", "advice", "exact_probe", "plan",
                               "subsumption", "prep", "fetch", "assembly"}) {
    EXPECT_TRUE(names.count(expected)) << "missing span: " << expected;
  }

  // The root carries the modeled response; fetch spans carry per-fetch
  // modeled cost; everything is closed with a measured duration.
  Span root;
  ASSERT_TRUE(cms.tracer().FindSpan("query", &root));
  EXPECT_GE(root.modeled_ms, 0);
  Span fetch;
  ASSERT_TRUE(cms.tracer().FindSpan("fetch", &fetch));
  EXPECT_GT(fetch.modeled_ms, 0);
  for (const Span& s : spans) {
    EXPECT_FALSE(s.open()) << s.name;
    EXPECT_GE(s.measured_ms, 0) << s.name;
  }
  // Children link into the tree: every non-root parent id exists.
  std::set<SpanId> ids;
  for (const Span& s : spans) ids.insert(s.id);
  for (const Span& s : spans) {
    if (s.parent != 0) {
      EXPECT_TRUE(ids.count(s.parent)) << s.name;
    }
  }
  EXPECT_TRUE(LooksLikeJson(cms.tracer().ToJson()));

  // A repeat of the same query (exact-hit path) still records a tree.
  const size_t before = cms.tracer().NumSpans();
  ASSERT_TRUE(cms.Query(q).ok());
  EXPECT_GT(cms.tracer().NumSpans(), before);
  Span probe;
  EXPECT_TRUE(cms.tracer().FindSpan("exact_probe", &probe));
}

}  // namespace
}  // namespace braid::obs
