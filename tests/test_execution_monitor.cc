// Unit tests for the Execution Monitor: element-source materialization
// (residual selections, index use), parallel-overlap accounting, and lazy
// stream construction.

#include <gtest/gtest.h>

#include <algorithm>

#include "caql/caql_query.h"
#include "cms/execution_monitor.h"
#include "exec/thread_pool.h"
#include "obs/trace.h"

namespace braid::cms {
namespace {

using caql::ParseCaql;
using rel::Tuple;
using rel::Value;

dbms::Database TestDb() {
  dbms::Database db;
  rel::Relation b1("b1", rel::Schema::FromNames({"a", "b"}));
  for (int i = 0; i < 30; ++i) {
    b1.AppendUnchecked({Value::Int(i % 6), Value::Int(i)});
  }
  rel::Relation b2("b2", rel::Schema::FromNames({"a", "b"}));
  for (int i = 0; i < 30; ++i) {
    b2.AppendUnchecked({Value::Int(i), Value::Int(i + 100)});
  }
  BRAID_CHECK_OK(db.AddTable(std::move(b1)));
  BRAID_CHECK_OK(db.AddTable(std::move(b2)));
  return db;
}

class ExecutionMonitorTest : public ::testing::Test {
 protected:
  ExecutionMonitorTest()
      : remote_(TestDb()),
        rdi_(&remote_),
        cache_(1 << 20, 4),
        planner_(&cache_.model(), &remote_, PlannerConfig{true}) {}

  /// Caches the full b1 relation as an element, optionally indexed on the
  /// first column.
  void CacheB1(bool indexed) {
    auto def = ParseCaql("e(X, Y) :- b1(X, Y)").value();
    auto ext = std::make_shared<rel::Relation>(
        "E1", rel::Schema::FromNames({"X", "Y"}));
    for (int i = 0; i < 30; ++i) {
      ext->AppendUnchecked({Value::Int(i % 6), Value::Int(i)});
    }
    auto element = std::make_shared<CacheElement>("E1", def, ext);
    if (indexed) element->EnsureIndex(0);
    ASSERT_TRUE(cache_.Insert(std::move(element)));
  }

  dbms::RemoteDbms remote_;
  RemoteDbmsInterface rdi_;
  CacheManager cache_;
  QueryPlanner planner_;
};

TEST_F(ExecutionMonitorTest, FullyLocalPlanTouchesNoRemote) {
  CacheB1(false);
  ExecutionMonitor monitor(&cache_, &rdi_, 0.01, true);
  auto plan = planner_.PlanQuery(ParseCaql("q(Y) :- b1(3, Y)").value());
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->fully_local);
  auto outcome = monitor.ExecutePlan(*plan);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->remote_queries, 0u);
  EXPECT_EQ(outcome->remote_ms, 0);
  EXPECT_EQ(outcome->result.NumTuples(), 5u);  // i%6==3: 3,9,15,21,27
  EXPECT_GT(outcome->local_ms, 0);
}

TEST_F(ExecutionMonitorTest, IndexReducesLocalWork) {
  ExecutionMonitor monitor(&cache_, &rdi_, 0.01, true);
  auto plan_query = ParseCaql("q(Y) :- b1(3, Y)").value();

  CacheB1(false);
  auto plan1 = planner_.PlanQuery(plan_query);
  ASSERT_TRUE(plan1.ok());
  auto unindexed = monitor.ExecutePlan(*plan1);
  ASSERT_TRUE(unindexed.ok());

  cache_.model().Remove("E1");
  CacheB1(true);
  auto plan2 = planner_.PlanQuery(plan_query);
  ASSERT_TRUE(plan2.ok());
  auto indexed = monitor.ExecutePlan(*plan2);
  ASSERT_TRUE(indexed.ok());

  EXPECT_EQ(indexed->result.NumTuples(), unindexed->result.NumTuples());
  EXPECT_LT(indexed->work.tuples_processed, unindexed->work.tuples_processed);
}

TEST_F(ExecutionMonitorTest, ParallelOverlapReducesResponse) {
  CacheB1(false);
  auto plan = planner_.PlanQuery(
      ParseCaql("q(Y, Z) :- b1(3, Y) & b2(Y, Z)").value());
  ASSERT_TRUE(plan.ok());
  ASSERT_FALSE(plan->fully_local);

  ExecutionMonitor serial(&cache_, &rdi_, 0.01, false);
  auto s = serial.ExecutePlan(*plan);
  ASSERT_TRUE(s.ok());
  ExecutionMonitor parallel(&cache_, &rdi_, 0.01, true);
  auto p = parallel.ExecutePlan(*plan);
  ASSERT_TRUE(p.ok());

  EXPECT_EQ(s->result.NumTuples(), p->result.NumTuples());
  EXPECT_LT(p->response_ms, s->response_ms);
  // Parallel response ≥ the larger branch alone.
  EXPECT_GE(p->response_ms, std::max(p->remote_ms, 0.0));
}

TEST_F(ExecutionMonitorTest, PinnedElementSurvivesEvictionMidPlan) {
  CacheB1(false);
  ExecutionMonitor monitor(&cache_, &rdi_, 0.01, true);
  auto plan = planner_.PlanQuery(ParseCaql("q(Y) :- b1(3, Y)").value());
  ASSERT_TRUE(plan.ok());
  cache_.model().Remove("E1");  // a concurrent session evicts mid-plan
  // The plan pinned the element at plan time, so execution still answers
  // from the (immutable) extension instead of failing.
  auto outcome = monitor.ExecutePlan(*plan);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->result.NumTuples(), 5u);
  EXPECT_EQ(outcome->remote_queries, 0u);
}

TEST_F(ExecutionMonitorTest, UnpinnedMissingElementReportsNotFound) {
  CacheB1(false);
  ExecutionMonitor monitor(&cache_, &rdi_, 0.01, true);
  auto plan = planner_.PlanQuery(ParseCaql("q(Y) :- b1(3, Y)").value());
  ASSERT_TRUE(plan.ok());
  // Hand-built plans carry no pin; with the element gone from the model,
  // execution has nothing to fall back to.
  for (PlanSource& source : plan->sources) source.element = nullptr;
  cache_.model().Remove("E1");
  auto outcome = monitor.ExecutePlan(*plan);
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutionMonitorTest, LazyStreamProducesSameBag) {
  CacheB1(true);
  ExecutionMonitor monitor(&cache_, &rdi_, 0.01, true);
  auto q = ParseCaql("q(X, Y) :- b1(X, Y) & Y > 10").value();
  auto plan = planner_.PlanQuery(q);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->fully_local);

  auto eager = monitor.ExecutePlan(*plan);
  ASSERT_TRUE(eager.ok());
  auto stream = monitor.BuildLazyStream(*plan);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  rel::Relation lazy = stream::Drain(**stream);

  std::multiset<std::string> e, l;
  for (const Tuple& t : eager->result.tuples()) {
    e.insert(rel::TupleToString(t));
  }
  for (const Tuple& t : lazy.tuples()) l.insert(rel::TupleToString(t));
  EXPECT_EQ(l, e);
}

TEST_F(ExecutionMonitorTest, LazyStreamRejectsRemotePlans) {
  ExecutionMonitor monitor(&cache_, &rdi_, 0.01, true);
  auto plan = planner_.PlanQuery(ParseCaql("q(Y) :- b1(3, Y)").value());
  ASSERT_TRUE(plan.ok());
  ASSERT_FALSE(plan->fully_local);  // empty cache
  EXPECT_EQ(monitor.BuildLazyStream(*plan).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ExecutionMonitorTest, LazyStreamRejectsConstantHead) {
  CacheB1(false);
  ExecutionMonitor monitor(&cache_, &rdi_, 0.01, true);
  auto plan = planner_.PlanQuery(ParseCaql("q(Y, 7) :- b1(7, Y)").value());
  ASSERT_TRUE(plan.ok());
  if (plan->fully_local) {
    EXPECT_EQ(monitor.BuildLazyStream(*plan).status().code(),
              StatusCode::kUnimplemented);
  }
}

TEST_F(ExecutionMonitorTest, LazyJoinAcrossTwoElements) {
  CacheB1(false);
  // Cache b2 as well.
  auto def = ParseCaql("e2(X, Y) :- b2(X, Y)").value();
  auto ext = std::make_shared<rel::Relation>(
      "E2", rel::Schema::FromNames({"X", "Y"}));
  for (int i = 0; i < 30; ++i) {
    ext->AppendUnchecked({Value::Int(i), Value::Int(i + 100)});
  }
  ASSERT_TRUE(cache_.Insert(std::make_shared<CacheElement>("E2", def, ext)));

  ExecutionMonitor monitor(&cache_, &rdi_, 0.01, true);
  auto q = ParseCaql("q(X, Z) :- b1(X, Y) & b2(Y, Z)").value();
  auto plan = planner_.PlanQuery(q);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->fully_local);
  auto stream = monitor.BuildLazyStream(*plan);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  rel::Relation lazy = stream::Drain(**stream);
  auto eager = monitor.ExecutePlan(*plan);
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ(lazy.NumTuples(), eager->result.NumTuples());
  EXPECT_EQ(lazy.NumTuples(), 30u);
}

TEST_F(ExecutionMonitorTest, ParallelTwoRemoteFetchesChargeMaxNotSum) {
  // Hand-built plan with two independent remote sources (the bench E10b
  // shape). With concurrent fetches, only the slowest sits on the modeled
  // critical path; charging the sum would model overlapped fetches as if
  // they ran back to back.
  Plan plan;
  plan.query = ParseCaql("q(X, Z) :- b1(X, Y) & b2(Y, Z)").value();
  PlanSource s1;
  s1.kind = PlanSource::Kind::kRemote;
  s1.remote_query = ParseCaql("s1(X, Y) :- b1(X, Y)").value();
  s1.remote_vars = {"X", "Y"};
  PlanSource s2;
  s2.kind = PlanSource::Kind::kRemote;
  s2.remote_query = ParseCaql("s2(Y, Z) :- b2(Y, Z)").value();
  s2.remote_vars = {"Y", "Z"};
  plan.sources.push_back(std::move(s1));
  plan.sources.push_back(std::move(s2));

  ExecutionMonitor serial(&cache_, &rdi_, 0.01, false);
  obs::Tracer serial_tracer;
  auto s = serial.ExecutePlan(plan, &serial_tracer, 0);
  ASSERT_TRUE(s.ok()) << s.status().ToString();

  exec::ThreadPool pool(2);
  ExecutionMonitor parallel(&cache_, &rdi_, 0.01, true,
                            exec::ExecContext{&pool, 4096});
  obs::Tracer tracer;
  auto p = parallel.ExecutePlan(plan, &tracer, 0);
  ASSERT_TRUE(p.ok()) << p.status().ToString();

  // Communication volume is mode-independent; the critical path is not.
  EXPECT_DOUBLE_EQ(p->remote_ms, s->remote_ms);
  EXPECT_DOUBLE_EQ(s->remote_critical_ms, s->remote_ms);
  EXPECT_GT(p->remote_ms, 0);
  EXPECT_LT(p->remote_critical_ms, p->remote_ms);

  // Per-fetch modeled costs from the trace spans: their max is the
  // critical path, their sum the communication volume.
  double sum = 0, mx = 0;
  int fetch_spans = 0;
  for (const obs::Span& span : tracer.Snapshot()) {
    if (span.name != "fetch") continue;
    ++fetch_spans;
    ASSERT_GE(span.modeled_ms, 0);
    EXPECT_GE(span.measured_ms, 0);
    sum += span.modeled_ms;
    mx = std::max(mx, span.modeled_ms);
  }
  EXPECT_EQ(fetch_spans, 2);
  EXPECT_DOUBLE_EQ(sum, p->remote_ms);
  EXPECT_DOUBLE_EQ(mx, p->remote_critical_ms);

  // No element sources, so prep is free: response = remote path +
  // assembly. Parallel charges max(fetches), serial their sum.
  EXPECT_DOUBLE_EQ(p->response_ms, p->remote_critical_ms + p->local_ms);
  EXPECT_DOUBLE_EQ(s->response_ms, s->remote_ms + s->local_ms);
  EXPECT_LT(p->response_ms, s->response_ms);
}

TEST(ExecutionMonitorTypes, RemoteFetchCarriesBaseTableTypes) {
  dbms::Database db;
  rel::Relation t("t", rel::Schema({rel::Column{"a", rel::ValueType::kInt},
                                    rel::Column{"b", rel::ValueType::kString}}));
  t.AppendUnchecked({Value::Int(1), Value::String("x")});
  BRAID_CHECK_OK(db.AddTable(std::move(t)));
  dbms::RemoteDbms remote(std::move(db));
  RemoteDbmsInterface rdi(&remote);

  auto fetch = rdi.Fetch(ParseCaql("s(X, Y) :- t(X, Y)").value(), {"X", "Y"});
  ASSERT_TRUE(fetch.ok()) << fetch.status().ToString();
  const rel::Schema& schema = fetch->bindings.schema();
  ASSERT_EQ(schema.size(), 2u);
  EXPECT_EQ(schema.column(0).name, "X");
  EXPECT_EQ(schema.column(0).type, rel::ValueType::kInt);
  EXPECT_EQ(schema.column(1).name, "Y");
  EXPECT_EQ(schema.column(1).type, rel::ValueType::kString);
}

TEST(ExecutionMonitorTypes, ElementProjectionCarriesExtensionTypes) {
  dbms::Database db;
  rel::Relation t("t", rel::Schema({rel::Column{"a", rel::ValueType::kInt},
                                    rel::Column{"b", rel::ValueType::kString}}));
  t.AppendUnchecked({Value::Int(1), Value::String("x")});
  BRAID_CHECK_OK(db.AddTable(std::move(t)));
  dbms::RemoteDbms remote(std::move(db));
  RemoteDbmsInterface rdi(&remote);
  CacheManager cache(1 << 20, 4);
  QueryPlanner planner(&cache.model(), &remote, PlannerConfig{true});

  auto def = ParseCaql("e(X, Y) :- t(X, Y)").value();
  auto ext = std::make_shared<rel::Relation>(
      "E1", rel::Schema({rel::Column{"X", rel::ValueType::kInt},
                         rel::Column{"Y", rel::ValueType::kString}}));
  ext->AppendUnchecked({Value::Int(1), Value::String("x")});
  ext->AppendUnchecked({Value::Int(2), Value::String("y")});
  ASSERT_TRUE(cache.Insert(std::make_shared<CacheElement>("E1", def, ext)));

  ExecutionMonitor monitor(&cache, &rdi, 0.01, false);
  auto plan = planner.PlanQuery(ParseCaql("q(X, Y) :- t(X, Y)").value());
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->fully_local);
  // The lazy pipeline exposes the binding schema directly: the projected
  // element source must carry the extension column types, not kNull.
  auto stream = monitor.BuildLazyStream(*plan);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  const rel::Schema& schema = (*stream)->schema();
  ASSERT_EQ(schema.size(), 2u);
  EXPECT_EQ(schema.column(0).type, rel::ValueType::kInt);
  EXPECT_EQ(schema.column(1).type, rel::ValueType::kString);
}

}  // namespace
}  // namespace braid::cms
