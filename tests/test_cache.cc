// Unit tests for cache elements, the cache model, and the cache manager's
// replacement policy (LRU modified by advice, paper §5.4).

#include <gtest/gtest.h>

#include "caql/caql_query.h"
#include "cms/cache_manager.h"

namespace braid::cms {
namespace {

using caql::ParseCaql;

CacheElementPtr MakeElement(const std::string& id, const std::string& def,
                            size_t rows, const std::string& origin = "") {
  auto q = ParseCaql(def);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  auto ext = std::make_shared<rel::Relation>(
      id, rel::Schema::FromNames({"x", "y"}));
  for (size_t i = 0; i < rows; ++i) {
    ext->AppendUnchecked({rel::Value::Int(static_cast<int64_t>(i)),
                          rel::Value::Int(static_cast<int64_t>(i * 2))});
  }
  auto e = std::make_shared<CacheElement>(id, q.value(), ext);
  e->set_origin_view(origin);
  return e;
}

TEST(CacheElement, MaterializedVsGenerator) {
  auto m = MakeElement("E1", "d(X, Y) :- b(X, Y)", 3);
  EXPECT_TRUE(m->is_materialized());
  CacheElement g("E2", ParseCaql("d(X, Y) :- b(X, Y)").value());
  EXPECT_FALSE(g.is_materialized());
  EXPECT_LT(g.ByteSize(), m->ByteSize());
}

TEST(CacheElement, EnsureIndexBuildsOnce) {
  auto e = MakeElement("E1", "d(X, Y) :- b(X, Y)", 10);
  auto i1 = e->EnsureIndex(0);
  ASSERT_NE(i1, nullptr);
  auto i2 = e->EnsureIndex(0);
  EXPECT_EQ(i1.get(), i2.get());
  EXPECT_EQ(e->index(1), nullptr);
  EXPECT_EQ(e->index(0), i1);
}

TEST(CacheElement, IndexCountsTowardByteSize) {
  auto e = MakeElement("E1", "d(X, Y) :- b(X, Y)", 50);
  const size_t before = e->ByteSize();
  e->EnsureIndex(0);
  EXPECT_GT(e->ByteSize(), before);
}

TEST(CacheModel, RegisterFindRemove) {
  CacheModel model;
  EXPECT_EQ(model.NextId(), "E1");
  EXPECT_EQ(model.NextId(), "E2");
  model.Register(MakeElement("E1", "d(X, Y) :- b1(X, Y)", 2));
  EXPECT_NE(model.Find("E1"), nullptr);
  EXPECT_EQ(model.Find("E9"), nullptr);
  model.Remove("E1");
  EXPECT_EQ(model.Find("E1"), nullptr);
  model.Remove("E1");  // Idempotent.
}

TEST(CacheModel, PredicateIndex) {
  CacheModel model;
  model.Register(MakeElement("E1", "d(X, Y) :- b1(X, Z) & b2(Z, Y)", 2));
  model.Register(MakeElement("E2", "e(X, Y) :- b2(X, Y)", 2));
  EXPECT_EQ(model.ByPredicate("b1").size(), 1u);
  EXPECT_EQ(model.ByPredicate("b2").size(), 2u);
  EXPECT_EQ(model.ByPredicate("zz").size(), 0u);
  model.Remove("E1");
  EXPECT_EQ(model.ByPredicate("b2").size(), 1u);
  EXPECT_EQ(model.ByPredicate("b1").size(), 0u);
}

TEST(CacheModel, CanonicalKeyLookup) {
  CacheModel model;
  auto e = MakeElement("E1", "d(X, Y) :- b(X, Y)", 2);
  model.Register(e);
  const std::string key =
      ParseCaql("d(P, Q) :- b(P, Q)").value().CanonicalKey();
  EXPECT_EQ(model.ByCanonicalKey(key), e);
  EXPECT_EQ(model.ByCanonicalKey("nope"), nullptr);
}

TEST(CacheManager, InsertWithinBudget) {
  CacheManager mgr(1 << 20, 4);
  EXPECT_TRUE(mgr.Insert(MakeElement("E1", "d(X, Y) :- b(X, Y)", 10)));
  EXPECT_EQ(mgr.stats().insertions, 1u);
  EXPECT_EQ(mgr.stats().evictions, 0u);
}

TEST(CacheManager, OversizedElementRejected) {
  CacheManager mgr(256, 4);
  EXPECT_FALSE(mgr.Insert(MakeElement("E1", "d(X, Y) :- b(X, Y)", 1000)));
  EXPECT_EQ(mgr.stats().rejected_too_large, 1u);
  EXPECT_EQ(mgr.model().size(), 0u);
}

TEST(CacheManager, EvictsLruWhenFull) {
  // Budget for roughly two elements of 20 rows.
  auto probe = MakeElement("P", "d(X, Y) :- b(X, Y)", 20);
  const size_t budget = probe->ByteSize() * 2 + 64;
  CacheManager mgr(budget, 4);
  ASSERT_TRUE(mgr.Insert(MakeElement("E1", "d1(X, Y) :- b1(X, Y)", 20)));
  mgr.Tick();
  ASSERT_TRUE(mgr.Insert(MakeElement("E2", "d2(X, Y) :- b2(X, Y)", 20)));
  mgr.Tick();
  mgr.Touch("E1");  // E1 now more recently used than E2.
  mgr.Tick();
  ASSERT_TRUE(mgr.Insert(MakeElement("E3", "d3(X, Y) :- b3(X, Y)", 20)));
  EXPECT_EQ(mgr.stats().evictions, 1u);
  EXPECT_EQ(mgr.model().Find("E2"), nullptr);  // LRU victim.
  EXPECT_NE(mgr.model().Find("E1"), nullptr);
  EXPECT_NE(mgr.model().Find("E3"), nullptr);
}

TEST(CacheManager, AdviceProtectsPredictedElement) {
  auto probe = MakeElement("P", "d(X, Y) :- b(X, Y)", 20);
  const size_t budget = probe->ByteSize() * 2 + 64;
  CacheManager mgr(budget, 4);
  // E1 is predicted to be needed soon; E2 is not, despite being more
  // recently used.
  mgr.set_replacement_advisor(
      [](const CacheElement& e) -> std::optional<size_t> {
        if (e.origin_view() == "d1") return 1;   // needed soon
        return std::nullopt;                     // unknown
      });
  ASSERT_TRUE(mgr.Insert(MakeElement("E1", "d1(X, Y) :- b1(X, Y)", 20, "d1")));
  mgr.Tick();
  ASSERT_TRUE(mgr.Insert(MakeElement("E2", "d2(X, Y) :- b2(X, Y)", 20, "d2")));
  mgr.Tick();
  mgr.Touch("E2");
  mgr.Tick();
  ASSERT_TRUE(mgr.Insert(MakeElement("E3", "d3(X, Y) :- b3(X, Y)", 20, "d3")));
  // Plain LRU would evict E1 (least recently used); advice protects it.
  EXPECT_NE(mgr.model().Find("E1"), nullptr);
  EXPECT_EQ(mgr.model().Find("E2"), nullptr);
}

TEST(CacheManager, TouchUpdatesHitCount) {
  CacheManager mgr(1 << 20, 4);
  ASSERT_TRUE(mgr.Insert(MakeElement("E1", "d(X, Y) :- b(X, Y)", 5)));
  mgr.Touch("E1");
  mgr.Touch("E1");
  EXPECT_EQ(mgr.model().Find("E1")->stats().hits, 2u);
  mgr.Touch("nonexistent");  // No crash.
}

TEST(CacheManager, MultipleEvictionsToFit) {
  auto probe = MakeElement("P", "d(X, Y) :- b(X, Y)", 10);
  const size_t budget = probe->ByteSize() * 3 + 64;
  CacheManager mgr(budget, 4);
  ASSERT_TRUE(mgr.Insert(MakeElement("E1", "d1(X, Y) :- b1(X, Y)", 10)));
  ASSERT_TRUE(mgr.Insert(MakeElement("E2", "d2(X, Y) :- b2(X, Y)", 10)));
  ASSERT_TRUE(mgr.Insert(MakeElement("E3", "d3(X, Y) :- b3(X, Y)", 10)));
  // An element of double size needs two evictions.
  ASSERT_TRUE(mgr.Insert(MakeElement("E4", "d4(X, Y) :- b4(X, Y)", 20)));
  EXPECT_GE(mgr.stats().evictions, 1u);
  size_t total = mgr.model().TotalBytes();
  EXPECT_LE(total, budget);
}

TEST(CacheManager, AdvisorConsultedOncePerElementPerPass) {
  auto probe = MakeElement("P", "d(X, Y) :- b(X, Y)", 10);
  const size_t budget = probe->ByteSize() * 4 + 64;
  CacheManager mgr(budget, 4);
  size_t advisor_calls = 0;
  // Distinct unprotected distances: E1 farthest (best victim), E4
  // nearest. The advisor models an expensive NFA reachability search, so
  // the manager must consult it once per element per eviction pass — not
  // on both sides of every sort comparison.
  mgr.set_replacement_advisor(
      [&advisor_calls](const CacheElement& e) -> std::optional<size_t> {
        ++advisor_calls;
        return static_cast<size_t>(10 - (e.id().back() - '0'));
      });
  for (int i = 1; i <= 4; ++i) {
    const std::string n = std::to_string(i);
    ASSERT_TRUE(mgr.Insert(
        MakeElement("E" + n, "d" + n + "(X, Y) :- b" + n + "(X, Y)", 10)));
    mgr.Tick();
  }
  advisor_calls = 0;
  // Double-size element: two evictions in one MakeRoom pass.
  ASSERT_TRUE(mgr.Insert(MakeElement("E5", "d5(X, Y) :- b5(X, Y)", 20)));
  EXPECT_EQ(advisor_calls, 4u);
  EXPECT_EQ(mgr.stats().evictions, 2u);
  // Deterministic victim order: farthest predicted distance first.
  EXPECT_EQ(mgr.model().Find("E1"), nullptr);
  EXPECT_EQ(mgr.model().Find("E2"), nullptr);
  EXPECT_NE(mgr.model().Find("E3"), nullptr);
  EXPECT_NE(mgr.model().Find("E4"), nullptr);
  EXPECT_NE(mgr.model().Find("E5"), nullptr);
}

TEST(CacheManager, EvictionOrderDeterministicUnderAdvisorTies) {
  // Identical advisor answers and last-used sequence: the element id is
  // the final tie-break, so repeated runs evict the same victims.
  auto run = [] {
    auto probe = MakeElement("P", "d(X, Y) :- b(X, Y)", 10);
    const size_t budget = probe->ByteSize() * 3 + 64;
    CacheManager mgr(budget, 4);
    mgr.set_replacement_advisor(
        [](const CacheElement&) -> std::optional<size_t> { return 7; });
    ASSERT_TRUE(mgr.Insert(MakeElement("E1", "d1(X, Y) :- b1(X, Y)", 10)));
    ASSERT_TRUE(mgr.Insert(MakeElement("E2", "d2(X, Y) :- b2(X, Y)", 10)));
    ASSERT_TRUE(mgr.Insert(MakeElement("E3", "d3(X, Y) :- b3(X, Y)", 10)));
    ASSERT_TRUE(mgr.Insert(MakeElement("E4", "d4(X, Y) :- b4(X, Y)", 10)));
    EXPECT_EQ(mgr.model().Find("E1"), nullptr);  // smallest id among ties
    EXPECT_NE(mgr.model().Find("E2"), nullptr);
    EXPECT_NE(mgr.model().Find("E3"), nullptr);
    EXPECT_NE(mgr.model().Find("E4"), nullptr);
  };
  run();
  run();
}

}  // namespace
}  // namespace braid::cms
