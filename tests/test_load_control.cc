// Tests for overload admission control (DESIGN.md §13): the
// LoadController's decision logic against a fake queue-depth source, and
// the integrated CMS behavior under a genuinely saturated session
// scheduler — speculative work sheds before any foreground query is
// refused, refusals are a clean kOverloaded (never a deadlock, never a
// dropped query), retries after the drain succeed, and every shed or
// refusal shows up on the obs counters exactly once. Runs under TSan in
// CI.

#include <cstdint>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "advice/advice.h"
#include "caql/caql_query.h"
#include "cms/cms.h"
#include "cms/load_controller.h"
#include "common/status.h"
#include "common/strings.h"
#include "dbms/remote_dbms.h"
#include "obs/metrics.h"
#include "relational/relation.h"
#include "relational/value.h"

namespace braid::cms {
namespace {

uint64_t CounterNow(const std::string& name) {
  return obs::MetricsRegistry::Global().CounterValue(name);
}

// --- LoadController decision logic -------------------------------------

TEST(LoadController, AdmitsBelowBoundRefusesAtBound) {
  size_t depth = 0;
  LoadControlPolicy policy;
  policy.admission_queue_bound = 4;
  LoadController controller(policy, [&depth] { return depth; });

  const uint64_t rejected_before = controller.rejected_queries();
  depth = 0;
  EXPECT_TRUE(controller.AdmitQuery());
  depth = 3;
  EXPECT_TRUE(controller.AdmitQuery());
  depth = 4;  // at the bound: refuse (bound counts queued, not running)
  EXPECT_FALSE(controller.AdmitQuery());
  depth = 4096;
  EXPECT_FALSE(controller.AdmitQuery());
  EXPECT_EQ(controller.rejected_queries() - rejected_before, 2u);
}

TEST(LoadController, DisabledPolicyAdmitsAndNeverSheds) {
  size_t depth = 1 << 20;
  LoadControlPolicy policy;
  policy.enabled = false;
  policy.admission_queue_bound = 1;
  policy.shed_queue_depth = 0;
  LoadController controller(policy, [&depth] { return depth; });

  const uint64_t rejected_before = controller.rejected_queries();
  EXPECT_TRUE(controller.AdmitQuery());
  EXPECT_FALSE(controller.ShouldShed());
  EXPECT_EQ(controller.rejected_queries(), rejected_before);
}

TEST(LoadController, ShedsStrictlyAboveQueueDepth) {
  size_t depth = 0;
  LoadControlPolicy policy;
  policy.shed_queue_depth = 2;
  LoadController controller(policy, [&depth] { return depth; });

  depth = 2;
  EXPECT_FALSE(controller.ShouldShed());
  depth = 3;
  EXPECT_TRUE(controller.ShouldShed());
  depth = 0;  // verdicts are snapshots: recovery is immediate
  EXPECT_FALSE(controller.ShouldShed());
}

TEST(LoadController, ShedsOnForegroundSloBreach) {
  size_t depth = 0;
  LoadControlPolicy policy;
  policy.shed_queue_depth = 1 << 20;  // only the SLO signal in play
  policy.foreground_slo_ms = 10;
  policy.ewma_alpha = 1.0;  // average follows the last sample exactly
  LoadController controller(policy, [&depth] { return depth; });

  EXPECT_FALSE(controller.ShouldShed());  // unprimed: no signal yet
  controller.OnForegroundLatency(50);
  EXPECT_DOUBLE_EQ(controller.ForegroundEwmaMs(), 50.0);
  EXPECT_TRUE(controller.ShouldShed());
  controller.OnForegroundLatency(1);
  EXPECT_FALSE(controller.ShouldShed());
}

TEST(LoadController, EwmaPrimesOnFirstSampleThenSmooths) {
  size_t depth = 0;
  LoadControlPolicy policy;
  policy.ewma_alpha = 0.5;
  LoadController controller(policy, [&depth] { return depth; });

  EXPECT_DOUBLE_EQ(controller.ForegroundEwmaMs(), 0.0);
  controller.OnForegroundLatency(100);  // first sample primes, no blend
  EXPECT_DOUBLE_EQ(controller.ForegroundEwmaMs(), 100.0);
  controller.OnForegroundLatency(0);
  EXPECT_DOUBLE_EQ(controller.ForegroundEwmaMs(), 50.0);
  controller.OnForegroundLatency(-25);  // clamped to 0, never negative
  EXPECT_DOUBLE_EQ(controller.ForegroundEwmaMs(), 25.0);
}

TEST(LoadController, CountShedSplitsPerKindOntoRegistry) {
  size_t depth = 0;
  LoadController controller(LoadControlPolicy{}, [&depth] { return depth; });

  const uint64_t prefetch_before = CounterNow("load.shed_prefetch");
  const uint64_t generalize_before = CounterNow("load.shed_generalize");
  const uint64_t intermediate_before = CounterNow("load.shed_intermediate");
  const uint64_t p0 = controller.shed_count(ShedKind::kPrefetch);
  const uint64_t g0 = controller.shed_count(ShedKind::kGeneralization);
  const uint64_t i0 = controller.shed_count(ShedKind::kIntermediate);

  controller.CountShed(ShedKind::kPrefetch);
  controller.CountShed(ShedKind::kPrefetch);
  controller.CountShed(ShedKind::kGeneralization);
  controller.CountShed(ShedKind::kIntermediate);

  EXPECT_EQ(controller.shed_count(ShedKind::kPrefetch) - p0, 2u);
  EXPECT_EQ(controller.shed_count(ShedKind::kGeneralization) - g0, 1u);
  EXPECT_EQ(controller.shed_count(ShedKind::kIntermediate) - i0, 1u);
  EXPECT_EQ(CounterNow("load.shed_prefetch") - prefetch_before, 2u);
  EXPECT_EQ(CounterNow("load.shed_generalize") - generalize_before, 1u);
  EXPECT_EQ(CounterNow("load.shed_intermediate") - intermediate_before, 1u);

  EXPECT_STREQ(ShedKindName(ShedKind::kPrefetch), "prefetch");
  EXPECT_STREQ(ShedKindName(ShedKind::kGeneralization), "generalize");
  EXPECT_STREQ(ShedKindName(ShedKind::kIntermediate), "intermediate");
}

// --- Integrated overload behavior --------------------------------------

dbms::Database SmallDb() {
  dbms::Database db;
  rel::Relation t("a", rel::Schema::FromNames({"x", "y"}));
  for (int64_t i = 0; i < 32; ++i) {
    t.AppendUnchecked({rel::Value::Int(i), rel::Value::Int(i % 4)});
  }
  BRAID_CHECK_OK(db.AddTable(std::move(t)));
  return db;
}

caql::CaqlQuery Parse(const std::string& text) {
  auto q = caql::ParseCaql(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q.value());
}

/// Saturates a 1-worker scheduler behind a slow (real-sleeping) remote
/// with a tiny admission bound: the burst must split into admitted
/// queries that all answer correctly and kOverloaded refusals that all
/// retry successfully once the drain quiesces the system — and the
/// refusal counter must match the observed refusals exactly.
TEST(LoadControlIntegration, OverloadRefusesCleanlyAndRetriesSucceed) {
  dbms::NetworkModel net;
  net.msg_latency_ms = 5;
  net.wall_clock_scale = 1.0;  // each cold fetch sleeps ~5ms for real
  dbms::RemoteDbms remote(SmallDb(), net, dbms::DbmsCostModel{});

  CmsConfig config;
  config.enable_advice = false;
  config.enable_prefetch = false;
  config.enable_generalization = false;
  config.num_threads = 1;
  config.enable_load_control = true;
  config.admission_queue_bound = 2;
  Cms cms(&remote, config);

  constexpr size_t kSessions = 4;
  constexpr size_t kPerSession = 6;
  std::vector<CmsSession*> sessions;
  for (size_t s = 0; s < kSessions; ++s) sessions.push_back(cms.OpenSession());

  const uint64_t rejected_before = CounterNow("load.rejected_sessions");

  // The burst: 24 distinct cold queries enqueued far faster than the one
  // worker can absorb them behind 5ms link sleeps.
  struct Issued {
    size_t session;
    caql::CaqlQuery query;
    std::future<Result<CmsAnswer>> future;
  };
  std::vector<Issued> issued;
  for (size_t s = 0; s < kSessions; ++s) {
    for (size_t i = 0; i < kPerSession; ++i) {
      const size_t id = s * kPerSession + i;
      caql::CaqlQuery q = Parse(StrCat("c", id, "(Y) :- a(", id, ", Y)"));
      auto future = cms.QueryAsync(*sessions[s], q);
      issued.push_back(Issued{s, std::move(q), std::move(future)});
    }
  }

  size_t completed = 0;
  std::vector<std::pair<size_t, caql::CaqlQuery>> refused;
  for (Issued& item : issued) {
    Result<CmsAnswer> answer = item.future.get();
    if (answer.ok()) {
      ++completed;
      continue;
    }
    // The only acceptable failure is a clean admission refusal.
    ASSERT_EQ(answer.status().code(), StatusCode::kOverloaded)
        << answer.status().ToString();
    refused.emplace_back(item.session, std::move(item.query));
  }
  EXPECT_EQ(completed + refused.size(), issued.size());
  // A bound of 2 queued queries against a 24-query burst must refuse.
  EXPECT_GT(refused.size(), 0u);
  // Every refusal was counted exactly once.
  EXPECT_EQ(CounterNow("load.rejected_sessions") - rejected_before,
            refused.size());

  // Refusals are clean: after the drain the very same queries succeed
  // with the right answers (each constant matches exactly one row).
  cms.DrainSessions();
  for (auto& [s, query] : refused) {
    auto answer = cms.Query(*sessions[s], query);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    ASSERT_NE(answer->relation, nullptr);
    EXPECT_EQ(answer->relation->NumTuples(), 1u);
  }

  for (CmsSession* s : sessions) cms.CloseSession(s);
}

/// Advice for the shed test: after observing view d1, the advisor
/// predicts d2, so a non-overloaded CMS would launch a prefetch of d2's
/// general form at the end of every d1 query.
advice::AdviceSet D1ThenD2Advice() {
  advice::AdviceSet advice;
  advice::ViewSpec d1;
  d1.id = "d1";
  d1.head = {advice::AnnotatedVar{"X", advice::Binding::kProducer},
             advice::AnnotatedVar{"Y", advice::Binding::kProducer}};
  d1.body = {
      logic::Atom("a", {logic::Term::Var("X"), logic::Term::Var("Y")})};
  advice.view_specs.push_back(d1);
  advice::ViewSpec d2;
  d2.id = "d2";
  d2.head = {advice::AnnotatedVar{"A", advice::Binding::kProducer},
             advice::AnnotatedVar{"B", advice::Binding::kProducer}};
  d2.body = {
      logic::Atom("b", {logic::Term::Var("A"), logic::Term::Var("B")})};
  advice.view_specs.push_back(d2);
  advice.path_expression = advice::PathExpr::Sequence(
      {advice::PathExpr::Pattern("d1", {}),
       advice::PathExpr::Pattern("d2", {})},
      advice::RepBound::Fixed(1), advice::RepBound::Fixed(1));
  return advice;
}

dbms::Database TwoTableDb() {
  dbms::Database db = SmallDb();
  rel::Relation t("b", rel::Schema::FromNames({"x", "y"}));
  for (int64_t i = 0; i < 32; ++i) {
    t.AppendUnchecked({rel::Value::Int(i), rel::Value::Int(i + 100)});
  }
  BRAID_CHECK_OK(db.AddTable(std::move(t)));
  return db;
}

/// Speculation yields first: with shed_queue_depth 0 and queries queued
/// behind a slow first query of the same session, the foreground queries
/// all complete (no kOverloaded) while the prefetch the advisor asked for
/// is shed — and the shed shows up on load.shed_prefetch.
TEST(LoadControlIntegration, SpeculationShedsBeforeForeground) {
  dbms::NetworkModel net;
  net.msg_latency_ms = 60;
  net.wall_clock_scale = 1.0;  // the first d1 fetch sleeps ~60ms for real
  dbms::RemoteDbms remote(TwoTableDb(), net, dbms::DbmsCostModel{});

  CmsConfig config;
  config.num_threads = 1;
  config.enable_load_control = true;
  config.shed_queue_depth = 0;  // any queued work sheds speculation
  config.admission_queue_bound = 1 << 20;  // foreground never refused
  Cms cms(&remote, config);
  CmsSession* session = cms.OpenSession(D1ThenD2Advice());

  const uint64_t shed_before = CounterNow("load.shed_prefetch");
  const uint64_t rejected_before = CounterNow("load.rejected_sessions");

  // Three d1 queries back to back on one session: while the first sleeps
  // on the link, the other two sit queued, so the first query's prefetch
  // pass runs at queue depth 2 and must shed.
  const caql::CaqlQuery d1 = Parse("d1(X, Y) :- a(X, Y)");
  std::vector<std::future<Result<CmsAnswer>>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(cms.QueryAsync(*session, d1));
  for (auto& f : futures) {
    auto answer = f.get();
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  }

  EXPECT_GE(CounterNow("load.shed_prefetch") - shed_before, 1u);
  EXPECT_EQ(CounterNow("load.rejected_sessions") - rejected_before, 0u);

  cms.DrainSessions();
  cms.DrainPrefetches();
  cms.CloseSession(session);
}

}  // namespace
}  // namespace braid::cms
