// Small-surface tests: rendering caps, cost estimates, and other odds and
// ends not reached by the mainline suites.

#include <gtest/gtest.h>

#include "advice/advice.h"
#include "dbms/remote_dbms.h"
#include "relational/relation.h"

namespace braid {
namespace {

using rel::Value;

TEST(RelationRender, TruncatesAtMaxRows) {
  rel::Relation r("r", rel::Schema::FromNames({"x"}));
  for (int i = 0; i < 10; ++i) r.AppendUnchecked({Value::Int(i)});
  const std::string s = r.ToString(3);
  EXPECT_NE(s.find("[10 tuples]"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_EQ(s.find("(9)"), std::string::npos);
}

TEST(RelationRender, ByteSizeGrowsWithData) {
  rel::Relation r("r", rel::Schema::FromNames({"x"}));
  const size_t empty = r.ByteSize();
  r.AppendUnchecked({Value::String(std::string(200, 'x'))});
  EXPECT_GT(r.ByteSize(), empty + 200);
}

TEST(RemoteEstimates, ServerMsScalesWithTables) {
  dbms::Database db;
  rel::Relation small("small", rel::Schema::FromNames({"x"}));
  small.AppendUnchecked({Value::Int(1)});
  rel::Relation big("big", rel::Schema::FromNames({"x"}));
  for (int i = 0; i < 5000; ++i) big.AppendUnchecked({Value::Int(i)});
  BRAID_CHECK_OK(db.AddTable(std::move(small)));
  BRAID_CHECK_OK(db.AddTable(std::move(big)));
  dbms::RemoteDbms remote(std::move(db));

  dbms::SqlQuery q_small;
  q_small.from = {"small"};
  dbms::SqlQuery q_big;
  q_big.from = {"big"};
  EXPECT_LT(remote.EstimateServerMs(q_small), remote.EstimateServerMs(q_big));
  EXPECT_GT(remote.EstimateServerMs(q_small), 0);
}

TEST(RemoteEstimates, CardinalityDropsWithSelections) {
  dbms::Database db;
  rel::Relation t("t", rel::Schema::FromNames({"x", "y"}));
  for (int i = 0; i < 100; ++i) {
    t.AppendUnchecked({Value::Int(i % 10), Value::Int(i)});
  }
  BRAID_CHECK_OK(db.AddTable(std::move(t)));
  dbms::RemoteDbms remote(std::move(db));

  dbms::SqlQuery scan;
  scan.from = {"t"};
  dbms::SqlQuery filtered = scan;
  filtered.where.push_back(dbms::Condition{dbms::ColRef{0, 0},
                                           rel::CompareOp::kEq, false,
                                           dbms::ColRef{}, Value::Int(3)});
  EXPECT_LT(remote.EstimateCardinality(filtered),
            remote.EstimateCardinality(scan));
  EXPECT_NEAR(remote.EstimateCardinality(filtered), 10.0, 0.5);
}

TEST(AdviceRender, PathAndViewsInOneDump) {
  advice::AdviceSet advice;
  advice::ViewSpec v;
  v.id = "d1";
  v.head = {advice::AnnotatedVar{"X", advice::Binding::kConsumer}};
  v.body = {logic::Atom("b", {logic::Term::Var("X")})};
  advice.view_specs.push_back(v);
  advice.path_expression = advice::PathExpr::Sequence(
      {advice::PathExpr::Pattern("d1", v.head)}, advice::RepBound::Fixed(1),
      advice::RepBound::Fixed(1));
  const std::string s = advice.ToString();
  EXPECT_NE(s.find("d1(X?)"), std::string::npos);
  EXPECT_NE(s.find("path: (d1(X?))<1,1>"), std::string::npos);
}

TEST(NetworkModel, BufferSizeChangesMessageCount) {
  dbms::Database db;
  rel::Relation t("t", rel::Schema::FromNames({"x"}));
  for (int i = 0; i < 100; ++i) t.AppendUnchecked({Value::Int(i)});
  BRAID_CHECK_OK(db.AddTable(std::move(t)));

  dbms::NetworkModel tiny;
  tiny.buffer_tuples = 10;
  dbms::RemoteDbms remote_tiny(db, tiny, dbms::DbmsCostModel{});
  dbms::NetworkModel huge;
  huge.buffer_tuples = 1000;
  dbms::RemoteDbms remote_huge(std::move(db), huge, dbms::DbmsCostModel{});

  dbms::SqlQuery q;
  q.from = {"t"};
  auto a = remote_tiny.Execute(q);
  auto b = remote_huge.Execute(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->cost.messages, 11u);  // 10 buffers + request
  EXPECT_EQ(b->cost.messages, 2u);   // 1 buffer + request
}

}  // namespace
}  // namespace braid
