// Unit and property tests for the logic substrate: terms, atoms,
// substitutions, unification, knowledge base, and parser.

#include <gtest/gtest.h>

#include "logic/knowledge_base.h"
#include "logic/parser.h"
#include "logic/substitution.h"
#include "logic/unify.h"

namespace braid::logic {
namespace {

Atom A(const std::string& text) {
  auto r = ParseQueryAtom(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.value();
}

TEST(Term, VariableVsConstant) {
  Term v = Term::Var("X");
  Term c = Term::Int(3);
  EXPECT_TRUE(v.is_variable());
  EXPECT_TRUE(c.is_constant());
  EXPECT_EQ(v.var_name(), "X");
  EXPECT_EQ(c.value(), rel::Value::Int(3));
  EXPECT_NE(v, c);
  EXPECT_EQ(Term::Var("X"), Term::Var("X"));
  EXPECT_NE(Term::Var("X"), Term::Var("Y"));
}

TEST(Atom, ParseAndRender) {
  Atom a = A("b1(c1, Y)");
  EXPECT_EQ(a.predicate, "b1");
  EXPECT_EQ(a.arity(), 2u);
  EXPECT_TRUE(a.args[0].is_constant());
  EXPECT_TRUE(a.args[1].is_variable());
  EXPECT_EQ(a.ToString(), "b1(c1, Y)");
}

TEST(Atom, VariablesFirstOccurrenceOrder) {
  Atom a = A("p(X, Y, X, Z)");
  EXPECT_EQ(a.Variables(), (std::vector<std::string>{"X", "Y", "Z"}));
}

TEST(Atom, ComparisonDetection) {
  Atom a("<", {Term::Var("X"), Term::Int(5)});
  EXPECT_TRUE(a.IsComparison());
  EXPECT_EQ(a.comparison_op(), rel::CompareOp::kLt);
  EXPECT_EQ(a.ToString(), "X < 5");
  EXPECT_FALSE(A("lt(X, Y)").IsComparison());
}

TEST(Atom, GroundCheck) {
  EXPECT_TRUE(A("p(1, c, 'str')").IsGround());
  EXPECT_FALSE(A("p(1, X)").IsGround());
}

TEST(Substitution, BindAndLookup) {
  Substitution s;
  EXPECT_TRUE(s.Bind("X", Term::Int(1)));
  EXPECT_EQ(s.Lookup("X"), Term::Int(1));
  EXPECT_EQ(s.Lookup("Y"), std::nullopt);
}

TEST(Substitution, ConflictRejected) {
  Substitution s;
  EXPECT_TRUE(s.Bind("X", Term::Int(1)));
  EXPECT_FALSE(s.Bind("X", Term::Int(2)));
  EXPECT_TRUE(s.Bind("X", Term::Int(1)));  // Re-binding same value is OK.
}

TEST(Substitution, ChainsResolveTransitively) {
  Substitution s;
  EXPECT_TRUE(s.Bind("X", Term::Var("Y")));
  EXPECT_TRUE(s.Bind("Y", Term::Int(7)));
  EXPECT_EQ(s.Apply(Term::Var("X")), Term::Int(7));
}

TEST(Substitution, VariableAliasUnionFind) {
  Substitution s;
  EXPECT_TRUE(s.Bind("X", Term::Var("Y")));
  EXPECT_TRUE(s.Bind("X", Term::Int(3)));  // Must propagate to Y.
  EXPECT_EQ(s.Apply(Term::Var("Y")), Term::Int(3));
}

TEST(Substitution, ApplyAtom) {
  Substitution s;
  s.Bind("X", Term::Int(1));
  Atom out = s.Apply(A("p(X, Y)"));
  EXPECT_EQ(out.ToString(), "p(1, Y)");
}

TEST(Unify, IdenticalAtoms) {
  auto mgu = UnifyAtoms(A("p(X, Y)"), A("p(X, Y)"));
  ASSERT_TRUE(mgu.has_value());
  EXPECT_TRUE(mgu->empty());
}

TEST(Unify, BindsVariablesBothDirections) {
  auto mgu = UnifyAtoms(A("p(X, 2)"), A("p(1, Y)"));
  ASSERT_TRUE(mgu.has_value());
  EXPECT_EQ(mgu->Lookup("X"), Term::Int(1));
  EXPECT_EQ(mgu->Lookup("Y"), Term::Int(2));
}

TEST(Unify, FailsOnConstantMismatch) {
  EXPECT_FALSE(UnifyAtoms(A("p(1)"), A("p(2)")).has_value());
  EXPECT_FALSE(UnifyAtoms(A("p(1)"), A("q(1)")).has_value());
  EXPECT_FALSE(UnifyAtoms(A("p(1)"), A("p(1, 2)")).has_value());
}

TEST(Unify, RepeatedVariablesConstrain) {
  // p(X, X) with p(1, 2) must fail; with p(3, 3) must succeed.
  EXPECT_FALSE(UnifyAtoms(A("p(X, X)"), A("p(1, 2)")).has_value());
  auto ok = UnifyAtoms(A("p(X, X)"), A("p(3, 3)"));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->Lookup("X"), Term::Int(3));
}

TEST(Unify, MguMakesAtomsEqualProperty) {
  const char* pairs[][2] = {
      {"p(X, Y)", "p(1, 2)"},      {"p(X, X)", "p(Y, 3)"},
      {"p(X, b, Z)", "p(a, Y, Z)"}, {"q(X, Y, X)", "q(Z, Z, 4)"},
  };
  for (const auto& pair : pairs) {
    auto mgu = UnifyAtoms(A(pair[0]), A(pair[1]));
    ASSERT_TRUE(mgu.has_value()) << pair[0] << " ~ " << pair[1];
    EXPECT_EQ(mgu->Apply(A(pair[0])), mgu->Apply(A(pair[1])))
        << pair[0] << " ~ " << pair[1] << " via " << mgu->ToString();
  }
}

TEST(MatchOneWay, ConstantInSpecificMatchesVariableInGeneral) {
  auto m = MatchOneWay(A("b(X, Y)"), A("b(1, Z)"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->Lookup("X"), Term::Int(1));
  EXPECT_EQ(m->Lookup("Y"), Term::Var("Z"));
}

TEST(MatchOneWay, ConstantInGeneralRequiresSameConstant) {
  EXPECT_TRUE(MatchOneWay(A("b(1, X)"), A("b(1, 2)")).has_value());
  EXPECT_FALSE(MatchOneWay(A("b(1, X)"), A("b(2, 2)")).has_value());
  // Variable in specific cannot match constant in general.
  EXPECT_FALSE(MatchOneWay(A("b(1)"), A("b(X)")).has_value());
}

TEST(MatchOneWay, RepeatedGeneralVariableNeedsConsistency) {
  EXPECT_TRUE(MatchOneWay(A("b(X, X)"), A("b(3, 3)")).has_value());
  EXPECT_FALSE(MatchOneWay(A("b(X, X)"), A("b(3, 4)")).has_value());
}

TEST(RenameVariables, OnlyVariablesChange) {
  Atom renamed = RenameVariables(A("p(X, c, Y)"), "_1");
  EXPECT_EQ(renamed.ToString(), "p(X_1, c, Y_1)");
}

TEST(Parser, ProgramWithAllDirectives) {
  KnowledgeBase kb;
  Status s = ParseProgram(R"(
% comment line
#base edge(src, dst).
#mutex p, q.
#fd edge: 0 -> 1.
#closure reach = edge.
reach(X, Y) :- edge(X, Y).          // another comment
reach(X, Y) :- edge(X, Z), reach(Z, Y).
p(X) :- edge(X, Y), Y > 3.
q(X) :- edge(X, Y), Y <= 3.
)",
                          &kb);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(kb.IsBaseRelation("edge"));
  EXPECT_TRUE(kb.IsUserDefined("reach"));
  EXPECT_EQ(kb.RulesFor("reach").size(), 2u);
  EXPECT_TRUE(kb.AreMutuallyExclusive("p", "q"));
  EXPECT_TRUE(kb.AreMutuallyExclusive("q", "p"));
  EXPECT_FALSE(kb.AreMutuallyExclusive("p", "reach"));
  EXPECT_EQ(kb.ClosureBaseOf("reach"), "edge");
  EXPECT_EQ(kb.fd_soas().size(), 1u);
  EXPECT_EQ(kb.fd_soas()[0].determinant, (std::vector<size_t>{0}));
}

TEST(Parser, RuleIdsAssignedInOrder) {
  KnowledgeBase kb;
  ASSERT_TRUE(ParseProgram("a(X) :- b(X). a(X) :- c(X).", &kb).ok());
  EXPECT_EQ(kb.rules()[0].id, "R1");
  EXPECT_EQ(kb.rules()[1].id, "R2");
}

TEST(Parser, LiteralKinds) {
  KnowledgeBase kb;
  ASSERT_TRUE(ParseProgram(
      "r(X, W) :- b(X, -4, 2.5, 'quoted str'), X != 3, plus(X, 1, W).", &kb)
                  .ok());
  const Rule& rule = kb.rules()[0];
  EXPECT_EQ(rule.body.size(), 3u);
  EXPECT_EQ(rule.body[0].args[1], Term::Int(-4));
  EXPECT_EQ(rule.body[0].args[2],
            Term::Const(rel::Value::Double(2.5)));
  EXPECT_EQ(rule.body[0].args[3], Term::Str("quoted str"));
  EXPECT_TRUE(rule.body[1].IsComparison());
}

TEST(Parser, Errors) {
  KnowledgeBase kb;
  EXPECT_EQ(ParseProgram("p(X :- q(X).", &kb).code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseProgram("p(X) :- q(X)", &kb).code(),
            StatusCode::kParseError);  // missing '.'
  EXPECT_EQ(ParseProgram("#nonsense p.", &kb).code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseProgram("p('unterminated).", &kb).code(),
            StatusCode::kParseError);
}

TEST(Parser, QueryAtomTrailingMarkers) {
  EXPECT_TRUE(ParseQueryAtom("k1(X, Y)?").ok());
  EXPECT_TRUE(ParseQueryAtom("k1(X, Y).").ok());
  EXPECT_TRUE(ParseQueryAtom("k1(X, Y)").ok());
  EXPECT_FALSE(ParseQueryAtom("k1(X, Y)? extra").ok());
}

TEST(KnowledgeBase, RejectsRuleForBaseRelation) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.DeclareBaseRelation("b", {"x"}).ok());
  Rule r;
  r.head = A("b(X)");
  EXPECT_EQ(kb.AddRule(r).code(), StatusCode::kInvalidArgument);
}

TEST(KnowledgeBase, RejectsBaseForDefinedPredicate) {
  KnowledgeBase kb;
  Rule r;
  r.head = A("p(X)");
  r.body = {A("q(X)")};
  ASSERT_TRUE(kb.AddRule(r).ok());
  EXPECT_EQ(kb.DeclareBaseRelation("p", {"x"}).code(),
            StatusCode::kInvalidArgument);
}

TEST(KnowledgeBase, ToStringRoundTrips) {
  KnowledgeBase kb;
  ASSERT_TRUE(ParseProgram(R"(
#base e(a, b).
#mutex p, q.
#closure r = e.
r(X, Y) :- e(X, Y).
p(X) :- e(X, Y), Y > 1.
q(X) :- e(X, Y), Y <= 1.
)",
                           &kb)
                  .ok());
  KnowledgeBase kb2;
  Status s = ParseProgram(kb.ToString(), &kb2);
  ASSERT_TRUE(s.ok()) << s.ToString() << "\n" << kb.ToString();
  EXPECT_EQ(kb.rules().size(), kb2.rules().size());
  EXPECT_EQ(kb.ToString(), kb2.ToString());
}

}  // namespace
}  // namespace braid::logic
