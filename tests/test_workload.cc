// Tests for the synthetic workload generators: determinism, structural
// invariants, and parsability of the bundled knowledge bases.

#include <gtest/gtest.h>

#include <set>

#include "logic/parser.h"
#include "workload/generators.h"

namespace braid::workload {
namespace {

TEST(Genealogy, DeterministicForSameSeed) {
  GenealogyParams params;
  params.people = 100;
  dbms::Database a = MakeGenealogyDatabase(params);
  dbms::Database b = MakeGenealogyDatabase(params);
  ASSERT_EQ(a.TotalTuples(), b.TotalTuples());
  const rel::Relation* pa = a.GetTable("parent");
  const rel::Relation* pb = b.GetTable("parent");
  ASSERT_EQ(pa->NumTuples(), pb->NumTuples());
  for (size_t i = 0; i < pa->NumTuples(); ++i) {
    EXPECT_EQ(pa->tuple(i), pb->tuple(i));
  }
}

TEST(Genealogy, DifferentSeedDiffers) {
  GenealogyParams a, b;
  a.people = b.people = 100;
  b.seed = a.seed + 1;
  dbms::Database da = MakeGenealogyDatabase(a);
  dbms::Database db = MakeGenealogyDatabase(b);
  const rel::Relation* pa = da.GetTable("parent");
  const rel::Relation* pb = db.GetTable("parent");
  bool any_diff = false;
  for (size_t i = 0; i < pa->NumTuples() && i < pb->NumTuples(); ++i) {
    if (pa->tuple(i) != pb->tuple(i)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Genealogy, ForestInvariants) {
  GenealogyParams params;
  params.people = 200;
  params.roots = 10;
  dbms::Database db = MakeGenealogyDatabase(params);
  const rel::Relation* parent = db.GetTable("parent");
  ASSERT_NE(parent, nullptr);
  // Every non-root has exactly one parent, and the parent has a smaller
  // id (acyclic by construction).
  std::set<int64_t> children;
  for (const rel::Tuple& t : parent->tuples()) {
    const int64_t child = t[0].AsInt();
    const int64_t par = t[1].AsInt();
    EXPECT_TRUE(children.insert(child).second) << "duplicate child " << child;
    EXPECT_LT(par, child);
    EXPECT_GE(child, static_cast<int64_t>(params.roots));
  }
  EXPECT_EQ(children.size(), params.people - params.roots);
  EXPECT_EQ(db.GetTable("person")->NumTuples(), params.people);
}

TEST(Genealogy, KbParsesAndDeclaresSchema) {
  logic::KnowledgeBase kb;
  Status s = logic::ParseProgram(GenealogyKb(), &kb);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(kb.IsBaseRelation("parent"));
  EXPECT_TRUE(kb.IsBaseRelation("person"));
  EXPECT_TRUE(kb.IsUserDefined("ancestor"));
  EXPECT_EQ(kb.ClosureBaseOf("ancestor"), "parent");
  EXPECT_FALSE(kb.fd_soas().empty());
}

TEST(Supplier, SchemaAndBounds) {
  SupplierParams params;
  params.suppliers = 40;
  params.parts = 70;
  params.supplies = 200;
  dbms::Database db = MakeSupplierDatabase(params);
  EXPECT_EQ(db.GetTable("supplier")->NumTuples(), params.suppliers);
  EXPECT_EQ(db.GetTable("part")->NumTuples(), params.parts);
  EXPECT_EQ(db.GetTable("supplies")->NumTuples(), params.supplies);
  for (const rel::Tuple& t : db.GetTable("supplies")->tuples()) {
    EXPECT_GE(t[0].AsInt(), 0);
    EXPECT_LT(t[0].AsInt(), static_cast<int64_t>(params.suppliers));
    EXPECT_GE(t[1].AsInt(), 0);
    EXPECT_LT(t[1].AsInt(), static_cast<int64_t>(params.parts));
    EXPECT_GE(t[2].AsInt(), 1);
  }
}

TEST(Supplier, KbParsesWithMutexSoa) {
  logic::KnowledgeBase kb;
  Status s = logic::ParseProgram(SupplierKb(), &kb);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(kb.AreMutuallyExclusive("heavy_part", "light_part"));
  EXPECT_TRUE(kb.IsUserDefined("second_source"));
}

TEST(Graph, AcyclicEdgesRespectOrdering) {
  GraphParams params;
  params.nodes = 50;
  params.edges = 200;
  params.acyclic = true;
  dbms::Database db = MakeGraphDatabase(params);
  for (const rel::Tuple& t : db.GetTable("edge")->tuples()) {
    EXPECT_LT(t[0].AsInt(), t[1].AsInt());
  }
}

TEST(Graph, CyclicModeAllowsBackEdges) {
  GraphParams params;
  params.nodes = 50;
  params.edges = 400;
  params.acyclic = false;
  dbms::Database db = MakeGraphDatabase(params);
  bool any_back = false;
  for (const rel::Tuple& t : db.GetTable("edge")->tuples()) {
    if (t[0].AsInt() > t[1].AsInt()) any_back = true;
  }
  EXPECT_TRUE(any_back);
}

TEST(Graph, KbParsesWithClosure) {
  logic::KnowledgeBase kb;
  ASSERT_TRUE(logic::ParseProgram(GraphKb(), &kb).ok());
  EXPECT_EQ(kb.ClosureBaseOf("reachable"), "edge");
}

}  // namespace
}  // namespace braid::workload
