// BOM navigator: a bill-of-materials expert over a remote parts database,
// combining every advanced feature in one workload — recursion through
// the #closure SOA, negation (leaf detection), #agg aggregate rules, and
// cross-query cache reuse.
//
//   $ ./bom_navigator [assembly-id]

#include <cstdlib>
#include <iostream>

#include "braid/braid_system.h"
#include "common/strings.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace braid;

  workload::BomParams params;
  const int64_t assembly =
      argc > 1 ? std::atoll(argv[1])
               : static_cast<int64_t>(params.items - 1);  // top assembly

  logic::KnowledgeBase kb;
  Status parsed = logic::ParseProgram(workload::BomKb(), &kb);
  if (!parsed.ok()) {
    std::cerr << "kb parse error: " << parsed << "\n";
    return 1;
  }
  BraidSystem braid(workload::MakeBomDatabase(params), std::move(kb));

  // Full containment closure of the chosen assembly (compiled strategy —
  // the #closure SOA routes it to the CMS fixed-point operator).
  ie::IeConfig compiled = braid.ie().config();
  compiled.strategy = ie::StrategyKind::kCompiled;
  braid.ie().set_config(compiled);
  auto all_parts = braid.Ask(StrCat("contains(", assembly, ", P)?"));
  if (!all_parts.ok()) {
    std::cerr << "query failed: " << all_parts.status() << "\n";
    return 1;
  }
  std::cout << "assembly " << assembly << " transitively contains "
            << all_parts->solutions.NumTuples() << " items\n";

  // Negation: which of those are atomic (leaf) parts?
  ie::IeConfig interp = braid.ie().config();
  interp.strategy = ie::StrategyKind::kInterpreted;
  braid.ie().set_config(interp);
  auto leaves = braid.Ask("leaf(P)?");
  if (leaves.ok()) {
    std::cout << "atomic parts in the catalogue: "
              << rel::Distinct(leaves->solutions).NumTuples() << " of "
              << params.items << "\n";
  }

  // Aggregate rules: assemblies with three or more direct components.
  auto complex_asms = braid.Ask("complex_assembly(A)?");
  if (complex_asms.ok()) {
    std::cout << "complex assemblies (>= 3 direct components): "
              << complex_asms->solutions.NumTuples() << "\n";
  }

  // Expensive leaf parts — a join of negation-derived and base data.
  auto pricey = braid.Ask("expensive_leaf(P, U)?");
  if (pricey.ok()) {
    std::cout << "expensive leaf parts (unit cost > 400):\n"
              << pricey->solutions.ToString(6) << "\n";
  }

  std::cout << "\nstatistics:\n  CMS: " << braid.cms().metrics().ToString()
            << "\n  remote: " << braid.remote().stats().ToString() << "\n";
  return 0;
}
