// Advice explorer: run the IE's pre-analysis pipeline on a query and dump
// each stage — problem graph, shaped graph, view specifications with
// producer/consumer annotations, and the path expression — then replay
// the session against the CMS and report how the advice was used
// (prefetches, generalizations, lazy answers, replacement protection).
//
//   $ ./advice_explorer "k1(X, Y)?"
//
// This is the paper's §4/§5 walkthrough as an executable.

#include <iostream>

#include "braid/braid_system.h"
#include "ie/path_creator.h"
#include "ie/problem_graph.h"
#include "ie/shaper.h"
#include "ie/view_specifier.h"

namespace {

const char* kKbText = R"(
#base b1(a, b).
#base b2(a, b).
#base b3(a, b, c).
#mutex k3, k4.
k3(X) :- b2(X, W).
k4(X) :- b3(X, c3, W).
k1(X, Y) :- b1(c1, Y), k2(X, Y).
k2(X, Y) :- k3(X), b2(X, Z), b3(Z, c2, Y).
k2(X, Y) :- k4(X), b3(X, c3, Z), b1(Z, Y).
)";

braid::dbms::Database ExampleDatabase() {
  using braid::rel::Relation;
  using braid::rel::Schema;
  using braid::rel::Value;
  braid::dbms::Database db;
  Relation b1("b1", Schema::FromNames({"a", "b"}));
  b1.AppendUnchecked({Value::String("c1"), Value::Int(1)});
  b1.AppendUnchecked({Value::String("c1"), Value::Int(2)});
  b1.AppendUnchecked({Value::Int(9), Value::Int(3)});
  Relation b2("b2", Schema::FromNames({"a", "b"}));
  b2.AppendUnchecked({Value::Int(10), Value::Int(20)});
  b2.AppendUnchecked({Value::Int(11), Value::Int(21)});
  Relation b3("b3", Schema::FromNames({"a", "b", "c"}));
  b3.AppendUnchecked({Value::Int(20), Value::String("c2"), Value::Int(1)});
  b3.AppendUnchecked({Value::Int(9), Value::String("c3"), Value::Int(9)});
  BRAID_CHECK_OK(db.AddTable(std::move(b1)));
  BRAID_CHECK_OK(db.AddTable(std::move(b2)));
  BRAID_CHECK_OK(db.AddTable(std::move(b3)));
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace braid;

  const std::string query_text = argc > 1 ? argv[1] : "k1(X, Y)?";

  logic::KnowledgeBase kb;
  Status parsed = logic::ParseProgram(kKbText, &kb);
  if (!parsed.ok()) {
    std::cerr << "kb parse error: " << parsed << "\n";
    return 1;
  }
  BraidSystem braid(ExampleDatabase(), std::move(kb));

  auto query = logic::ParseQueryAtom(query_text);
  if (!query.ok()) {
    std::cerr << "bad query: " << query.status() << "\n";
    return 1;
  }

  std::cout << "knowledge base:\n" << braid.kb().ToString() << "\n";

  // Pre-analysis, stage by stage.
  auto pre = braid.ie().Analyze(query.value());
  if (!pre.ok()) {
    std::cerr << "pre-analysis failed: " << pre.status() << "\n";
    return 1;
  }
  std::cout << "shaped " << pre->graph.ToString() << "\n";
  std::cout << "view specifications:\n";
  for (const auto& view : pre->advice.view_specs) {
    std::cout << "  " << view.ToString() << "\n";
  }
  if (pre->advice.path_expression != nullptr) {
    std::cout << "path expression:\n  "
              << pre->advice.path_expression->ToString() << "\n";
  }

  // Replay: ask for real and report advice usage.
  auto outcome = braid.Ask(query.value());
  if (!outcome.ok()) {
    std::cerr << "query failed: " << outcome.status() << "\n";
    return 1;
  }
  std::cout << "\nsolutions:\n" << outcome->solutions.ToString() << "\n";
  std::cout << "\nhow the CMS used the advice:\n  "
            << braid.cms().metrics().ToString() << "\n";
  std::cout << "cache contents:\n"
            << braid.cms().cache().model().ToString() << "\n";
  return 0;
}
