// Quickstart: build a tiny remote database and knowledge base, wire up a
// BrAID system, and ask the AI query from the paper's Example 1.
//
//   $ ./quickstart [--trace]
//
// Walks through: declaring base relations, writing Horn rules, asking a
// query, and inspecting the advice (view specifications + path
// expression) the inference engine generated for the Cache Management
// System. With --trace, prints the CMS's span tree for each query — one
// `query` root per CAQL query the IE issued, with advice / plan
// (subsumption) / prep / fetch / assembly children carrying both
// measured wall time and modeled simulated cost.

#include <cstring>
#include <iostream>

#include "braid/braid_system.h"

int main(int argc, char** argv) {
  using namespace braid;

  bool trace = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) trace = true;
  }

  // 1. The "remote" database: three base relations on the simulated
  //    database server (the paper's INGRES / IDM-500 stand-in).
  dbms::Database db;
  {
    rel::Relation b1("b1", rel::Schema::FromNames({"a", "b"}));
    b1.AppendUnchecked({rel::Value::String("c1"), rel::Value::Int(1)});
    b1.AppendUnchecked({rel::Value::String("c1"), rel::Value::Int(2)});
    b1.AppendUnchecked({rel::Value::Int(8), rel::Value::Int(4)});
    rel::Relation b2("b2", rel::Schema::FromNames({"a", "b"}));
    b2.AppendUnchecked({rel::Value::Int(10), rel::Value::Int(20)});
    b2.AppendUnchecked({rel::Value::Int(11), rel::Value::Int(21)});
    rel::Relation b3("b3", rel::Schema::FromNames({"a", "b", "c"}));
    b3.AppendUnchecked({rel::Value::Int(20), rel::Value::String("c2"),
                        rel::Value::Int(1)});
    b3.AppendUnchecked({rel::Value::Int(21), rel::Value::String("c2"),
                        rel::Value::Int(2)});
    BRAID_CHECK_OK(db.AddTable(std::move(b1)));
    BRAID_CHECK_OK(db.AddTable(std::move(b2)));
    BRAID_CHECK_OK(db.AddTable(std::move(b3)));
  }

  // 2. The knowledge base: the paper's Example-1 rules.
  logic::KnowledgeBase kb;
  Status parsed = logic::ParseProgram(R"(
#base b1(a, b).
#base b2(a, b).
#base b3(a, b, c).
k1(X, Y) :- b1(c1, Y), k2(X, Y).
k2(X, Y) :- b2(X, Z), b3(Z, c2, Y).
k2(X, Y) :- b3(X, c3, Z), b1(Z, Y).
)",
                                      &kb);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed << "\n";
    return 1;
  }

  // 3. Wire the three components (Figure 3) and ask the AI query.
  BraidSystem braid(std::move(db), std::move(kb));

  auto outcome = braid.Ask("k1(X, Y)?");
  if (!outcome.ok()) {
    std::cerr << "query failed: " << outcome.status() << "\n";
    return 1;
  }

  std::cout << "solutions:\n" << outcome->solutions.ToString() << "\n\n";

  if (trace) {
    std::cout << "query trace (measured wall time vs modeled cost):\n"
              << braid.cms().tracer().PrettyTree() << "\n";
  }

  std::cout << "advice the IE sent the CMS at session start:\n"
            << outcome->advice.ToString() << "\n";

  std::cout << "session statistics:\n  CMS: "
            << braid.cms().metrics().ToString() << "\n  remote DBMS: "
            << braid.remote().stats().ToString() << "\n";

  // 4. Ask again: the answer now comes from the cache.
  braid.cms().tracer().Clear();
  auto again = braid.Ask("k1(X, Y)?");
  if (again.ok()) {
    std::cout << "\nafter re-asking the same query:\n  CMS: "
              << braid.cms().metrics().ToString() << "\n";
    if (trace) {
      std::cout << "\nre-ask trace (exact-probe hits, no remote fetches):\n"
                << braid.cms().tracer().PrettyTree();
    }
  }
  return 0;
}
