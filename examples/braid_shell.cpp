// braid_shell: an interactive REPL over the whole system — load a synthetic
// workload (database + knowledge base), ask AI queries, switch inference
// strategies, and inspect the advice, cache, and communication statistics
// as a session unfolds.
//
//   $ ./braid_shell
//   braid> :workload genealogy 300
//   braid> ?- ancestor(250, Y).
//   braid> :cache
//   braid> :mode compiled
//   braid> ?- ancestor(250, Y).
//   braid> :stats
//
// Type :help inside the shell for the full command list.

#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "braid/braid_system.h"
#include "workload/generators.h"
#include "workload/loader.h"

namespace {

using namespace braid;

const char* kHelp = R"(commands:
  ?- <atom>.                 ask an AI query, e.g. ?- ancestor(250, Y).
  :workload <name> [size]    load a workload: genealogy | supplier | graph | bom
  :load <dir> <kbfile>       load CSV tables from <dir> and a .braid program
  :mode <interpreted|compiled>
  :solutions <N|all>         cap solutions (1 = Prolog-style first answer)
  :analyze <atom>            show the pre-analysis (graph, views, path)
  :kb                        print the knowledge base
  :cache                     print the cache contents
  :model                     print the cache model as a relation
  :stats                     print CMS and remote-DBMS statistics
  :reset-stats               zero the counters
  :help                      this text
  :quit                      exit
)";

std::unique_ptr<BraidSystem> LoadWorkload(const std::string& name,
                                          size_t size) {
  logic::KnowledgeBase kb;
  if (name == "genealogy") {
    workload::GenealogyParams params;
    if (size > 0) params.people = size;
    BRAID_CHECK_OK(logic::ParseProgram(workload::GenealogyKb(), &kb));
    return std::make_unique<BraidSystem>(
        workload::MakeGenealogyDatabase(params), std::move(kb));
  }
  if (name == "supplier") {
    workload::SupplierParams params;
    if (size > 0) {
      params.suppliers = size / 5 + 1;
      params.parts = size;
      params.supplies = size * 5;
    }
    BRAID_CHECK_OK(logic::ParseProgram(workload::SupplierKb(), &kb));
    return std::make_unique<BraidSystem>(
        workload::MakeSupplierDatabase(params), std::move(kb));
  }
  if (name == "bom") {
    workload::BomParams params;
    if (size > 0) {
      params.items = size;
      params.leaves = size * 3 / 5;
    }
    BRAID_CHECK_OK(logic::ParseProgram(workload::BomKb(), &kb));
    return std::make_unique<BraidSystem>(workload::MakeBomDatabase(params),
                                         std::move(kb));
  }
  if (name == "graph") {
    workload::GraphParams params;
    if (size > 0) {
      params.nodes = size;
      params.edges = size * 3;
    }
    BRAID_CHECK_OK(logic::ParseProgram(workload::GraphKb(), &kb));
    return std::make_unique<BraidSystem>(workload::MakeGraphDatabase(params),
                                         std::move(kb));
  }
  return nullptr;
}

}  // namespace

int main() {
  std::unique_ptr<BraidSystem> braid = LoadWorkload("genealogy", 300);
  std::cout << "BrAID shell — genealogy workload (300 people) loaded.\n"
            << "Type :help for commands.\n";

  std::string line;
  while (std::cout << "braid> " << std::flush, std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string word;
    in >> word;
    if (word.empty()) continue;

    if (word == ":quit" || word == ":q" || word == ":exit") break;
    if (word == ":help") {
      std::cout << kHelp;
      continue;
    }
    if (word == ":workload") {
      std::string name;
      size_t size = 0;
      in >> name >> size;
      auto loaded = LoadWorkload(name, size);
      if (loaded == nullptr) {
        std::cout << "unknown workload '" << name
                  << "' (genealogy | supplier | graph | bom)\n";
        continue;
      }
      braid = std::move(loaded);
      std::cout << "loaded " << name << " ("
                << braid->remote().database().TotalTuples()
                << " remote tuples)\n";
      continue;
    }
    if (word == ":load") {
      std::string dir, kbfile;
      in >> dir >> kbfile;
      auto db = workload::LoadDatabaseFromDir(dir);
      if (!db.ok()) {
        std::cout << "data load failed: " << db.status() << "\n";
        continue;
      }
      auto kb = workload::LoadKnowledgeBase(kbfile);
      if (!kb.ok()) {
        std::cout << "kb load failed: " << kb.status() << "\n";
        continue;
      }
      braid = std::make_unique<BraidSystem>(std::move(db).value(),
                                            std::move(kb).value());
      std::cout << "loaded " << braid->remote().database().TotalTuples()
                << " tuples and "
                << braid->kb().rules().size() << " rules\n";
      continue;
    }
    if (word == ":mode") {
      std::string mode;
      in >> mode;
      ie::IeConfig config = braid->ie().config();
      if (mode == "interpreted") {
        config.strategy = ie::StrategyKind::kInterpreted;
      } else if (mode == "compiled") {
        config.strategy = ie::StrategyKind::kCompiled;
      } else {
        std::cout << "mode is 'interpreted' or 'compiled'\n";
        continue;
      }
      braid->ie().set_config(config);
      std::cout << "strategy = " << mode << "\n";
      continue;
    }
    if (word == ":solutions") {
      std::string n;
      in >> n;
      ie::IeConfig config = braid->ie().config();
      config.max_solutions =
          (n == "all" || n.empty()) ? SIZE_MAX
                                    : static_cast<size_t>(std::stoull(n));
      braid->ie().set_config(config);
      std::cout << "max solutions = " << n << "\n";
      continue;
    }
    if (word == ":kb") {
      std::cout << braid->kb().ToString();
      continue;
    }
    if (word == ":cache") {
      std::cout << braid->cms().cache().model().ToString() << "\n";
      continue;
    }
    if (word == ":model") {
      std::cout << braid->cms().cache().model().AsRelation().ToString(30)
                << "\n";
      continue;
    }
    if (word == ":stats") {
      std::cout << "CMS:    " << braid->cms().metrics().ToString() << "\n"
                << "remote: " << braid->remote().stats().ToString() << "\n"
                << "cache:  " << braid->cms().cache().model().size()
                << " elements, " << braid->cms().cache().model().TotalBytes()
                << " / " << braid->cms().cache().budget_bytes()
                << " bytes, evictions="
                << braid->cms().cache().stats().evictions << "\n";
      continue;
    }
    if (word == ":reset-stats") {
      braid->cms().ResetMetrics();
      braid->remote().ResetStats();
      std::cout << "counters zeroed\n";
      continue;
    }
    if (word == ":analyze") {
      std::string rest;
      std::getline(in, rest);
      auto atom = logic::ParseQueryAtom(rest);
      if (!atom.ok()) {
        std::cout << "parse error: " << atom.status() << "\n";
        continue;
      }
      auto pre = braid->ie().Analyze(atom.value());
      if (!pre.ok()) {
        std::cout << "analysis failed: " << pre.status() << "\n";
        continue;
      }
      std::cout << pre->graph.ToString() << "view specifications:\n";
      for (const auto& v : pre->advice.view_specs) {
        std::cout << "  " << v.ToString() << "\n";
      }
      if (pre->advice.path_expression != nullptr) {
        std::cout << "path: " << pre->advice.path_expression->ToString()
                  << "\n";
      }
      continue;
    }
    if (word == "?-") {
      std::string rest;
      std::getline(in, rest);
      auto outcome = braid->Ask(rest);
      if (!outcome.ok()) {
        std::cout << "error: " << outcome.status() << "\n";
        continue;
      }
      std::cout << outcome->solutions.ToString(20) << "\n";
      continue;
    }
    std::cout << "unrecognized input (try :help)\n";
  }
  return 0;
}
