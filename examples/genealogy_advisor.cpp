// Genealogy advisor: a recursive expert-system workload over a remote
// genealogy database — the kind of deductive retrieval (ancestors,
// siblings, elders) the paper's introduction motivates.
//
//   $ ./genealogy_advisor [person-id]
//
// Shows: recursion under both inference strategies (interpreted DFS vs
// compiled fixpoint via the CMS's transitive-closure operator), the
// communication savings from the cache across consecutive AI queries, and
// single-solution (Prolog-style) querying.

#include <cstdlib>
#include <iostream>

#include "braid/braid_system.h"
#include "common/strings.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace braid;

  const int64_t person = argc > 1 ? std::atoll(argv[1]) : 420;

  workload::GenealogyParams params;
  params.people = 500;
  params.roots = 8;
  logic::KnowledgeBase kb;
  Status parsed = logic::ParseProgram(workload::GenealogyKb(), &kb);
  if (!parsed.ok()) {
    std::cerr << "kb parse error: " << parsed << "\n";
    return 1;
  }

  BraidSystem braid(workload::MakeGenealogyDatabase(params), std::move(kb));

  std::cout << "remote database: "
            << braid.remote().database().TotalTuples() << " tuples\n\n";

  // Query 1: all ancestors of `person` (interpreted, tuple-at-a-time).
  auto ancestors = braid.Ask(StrCat("ancestor(", person, ", Y)?"));
  if (!ancestors.ok()) {
    std::cerr << "query failed: " << ancestors.status() << "\n";
    return 1;
  }
  std::cout << "ancestors of " << person << " (interpreted strategy):\n"
            << ancestors->solutions.ToString(10) << "\n";
  std::cout << "  CAQL queries emitted: "
            << ancestors->interpreter_stats.caql_queries
            << ", stream tuples consumed: "
            << ancestors->interpreter_stats.tuples_consumed << "\n\n";

  // Query 2: grandparents — the base data is already cached, so this
  // session runs without touching the remote DBMS.
  const size_t remote_before = braid.remote().stats().queries;
  auto grandparents = braid.Ask(StrCat("grandparent(", person, ", Y)?"));
  if (grandparents.ok()) {
    std::cout << "grandparents of " << person << ":\n"
              << grandparents->solutions.ToString(5) << "\n";
    std::cout << "  remote queries this session: "
              << braid.remote().stats().queries - remote_before << "\n\n";
  }

  // Query 3: the same recursion under the compiled strategy — the
  // #closure SOA routes it to the CMS fixed-point operator.
  ie::IeConfig compiled = braid.ie().config();
  compiled.strategy = ie::StrategyKind::kCompiled;
  braid.ie().set_config(compiled);
  auto compiled_ancestors = braid.Ask(StrCat("ancestor(", person, ", Y)?"));
  if (compiled_ancestors.ok()) {
    std::cout << "same query, compiled strategy: "
              << compiled_ancestors->solutions.NumTuples()
              << " solutions (vs " << ancestors->solutions.NumTuples()
              << " interpreted)\n\n";
  }

  // Query 4: Prolog-style "just give me one elder in the family".
  ie::IeConfig single = braid.ie().config();
  single.strategy = ie::StrategyKind::kInterpreted;
  single.max_solutions = 1;
  braid.ie().set_config(single);
  auto one_elder = braid.Ask("elder(X, A)?");
  if (one_elder.ok() && !one_elder->solutions.empty()) {
    std::cout << "one elder (single-solution mode): "
              << rel::TupleToString(one_elder->solutions.tuple(0)) << "\n";
  }

  std::cout << "\nfinal statistics:\n  CMS: "
            << braid.cms().metrics().ToString() << "\n  remote: "
            << braid.remote().stats().ToString() << "\n  cache: "
            << braid.cms().cache().model().size() << " elements, "
            << braid.cms().cache().model().TotalBytes() << " bytes\n";
  return 0;
}
