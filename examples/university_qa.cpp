// University advisor: the whole system driven from *files* — a CSV data
// directory standing in for the remote database and a .braid knowledge
// base — the way a downstream user would deploy BrAID against their own
// data.
//
//   $ ./university_qa [data_dir]      (default: examples/data/university)

#include <iostream>

#include "braid/braid_system.h"
#include "common/strings.h"
#include "workload/loader.h"

int main(int argc, char** argv) {
  using namespace braid;

  const std::string dir =
      argc > 1 ? argv[1] : "examples/data/university";

  auto db = workload::LoadDatabaseFromDir(dir);
  if (!db.ok()) {
    std::cerr << "data load failed: " << db.status() << "\n";
    return 1;
  }
  auto kb = workload::LoadKnowledgeBase(dir + "/university.braid");
  if (!kb.ok()) {
    std::cerr << "kb load failed: " << kb.status() << "\n";
    return 1;
  }
  std::cout << "loaded " << db->TotalTuples() << " tuples from " << dir
            << "\n\n";

  BraidSystem braid(std::move(db).value(), std::move(kb).value());

  auto show = [&braid](const std::string& question, const std::string& query) {
    auto out = braid.Ask(query);
    if (!out.ok()) {
      std::cout << question << "\n  error: " << out.status() << "\n";
      return;
    }
    std::cout << question << "\n" << out->solutions.ToString(8) << "\n\n";
  };

  show("Which courses (transitively) require cs101?",
       "requires_all(C, 101)?");
  show("Is dave eligible for cs201?", "eligible(4, 201)?");
  show("Which students may take cs301?", "eligible(S, 301)?");
  show("Honors students (best grade >= 95):", "honors(S)?");
  show("Busy students (3+ courses):", "busy(S)?");

  std::cout << "statistics:\n  CMS: " << braid.cms().metrics().ToString()
            << "\n  remote: " << braid.remote().stats().ToString() << "\n";
  return 0;
}
