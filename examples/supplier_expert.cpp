// Supplier-parts expert: procurement rules over the classic
// supplier/part/supplies schema, exercising joins, comparisons,
// mutual-exclusion SOAs, and the CMS-only aggregation service.
//
//   $ ./supplier_expert
//
// Shows: multi-join AI queries, advice-driven caching across a session of
// related queries, and aggregation performed by the CMS (the remote DML
// has no aggregates — paper §5.3 "Additional Operations").

#include <iostream>

#include "braid/braid_system.h"
#include "workload/generators.h"

int main() {
  using namespace braid;

  workload::SupplierParams params;
  params.suppliers = 60;
  params.parts = 150;
  params.supplies = 700;
  logic::KnowledgeBase kb;
  Status parsed = logic::ParseProgram(workload::SupplierKb(), &kb);
  if (!parsed.ok()) {
    std::cerr << "kb parse error: " << parsed << "\n";
    return 1;
  }
  BraidSystem braid(workload::MakeSupplierDatabase(params), std::move(kb));

  // Which suppliers can deliver heavy parts in bulk?
  auto heavy = braid.Ask("heavy_supplier(S, P)?");
  if (!heavy.ok()) {
    std::cerr << "query failed: " << heavy.status() << "\n";
    return 1;
  }
  std::cout << "heavy-part suppliers: " << heavy->solutions.NumTuples()
            << " (supplier, part) pairs\n";

  auto bulk = braid.Ask("bulk_supply(S, P)?");
  if (bulk.ok()) {
    std::cout << "bulk supplies (qty > 500): " << bulk->solutions.NumTuples()
              << "\n";
  }

  // Parts with a second source — resilience analysis.
  auto second = braid.Ask("second_source(P, S1, S2)?");
  if (second.ok()) {
    std::cout << "parts with a second source: "
              << rel::Distinct(rel::Project(second->solutions, {0}))
                     .NumTuples()
              << " of " << params.parts << "\n";
  }

  // Mutual exclusion: heavy_part and light_part partition the parts.
  auto light = braid.Ask("light_supplier(S, P)?");
  if (light.ok()) {
    std::cout << "light-part supplier pairs: "
              << light->solutions.NumTuples() << " (heavy "
              << heavy->solutions.NumTuples() << ", total supplies "
              << params.supplies << ")\n";
  }

  // Aggregate rules (the AGG second-order predicate): parts with a single
  // source are supply-chain risks.
  auto single = braid.Ask("single_sourced(P)?");
  if (single.ok()) {
    std::cout << "single-sourced parts: " << single->solutions.NumTuples()
              << "\n";
  }
  auto volume = braid.Ask("supplier_volume(3, T)?");
  if (volume.ok() && !volume->solutions.empty()) {
    std::cout << "total quantity supplied by supplier 3: "
              << volume->solutions.tuple(0)[0].ToString() << "\n";
  }

  // CMS-only aggregation: suppliers per city (the remote DML cannot
  // aggregate; the CMS query processor can).
  auto per_city = braid.cms().Aggregate(
      caql::ParseCaql("sc(S, C) :- supplier(S, C)").value(), {"C"},
      rel::AggFn::kCount, "S");
  if (per_city.ok()) {
    std::cout << "\nsuppliers per city (aggregated by the CMS):\n"
              << per_city->ToString(12) << "\n";
  }

  std::cout << "\nsession statistics:\n  CMS: "
            << braid.cms().metrics().ToString() << "\n  remote: "
            << braid.remote().stats().ToString() << "\n";
  return 0;
}
