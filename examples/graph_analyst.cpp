// Graph analyst: reachability analysis over a remote edge relation,
// exercising the newer CAQL surface — negation (NOT), the CMS fixed-point
// operator, sorted answers (co-existing alternative representations,
// paper §5.2), and CMS-side aggregation.
//
//   $ ./graph_analyst

#include <iostream>

#include "braid/braid_system.h"
#include "workload/generators.h"

int main() {
  using namespace braid;

  workload::GraphParams params;
  params.nodes = 60;
  params.edges = 140;
  logic::KnowledgeBase kb;
  Status parsed = logic::ParseProgram(R"(
#base edge(src, dst).
#closure reachable = edge.
reachable(X, Y) :- edge(X, Y).
reachable(X, Y) :- edge(X, Z), reachable(Z, Y).
linked(X) :- edge(X, Y).
linked(Y) :- edge(X, Y).
dead_end(X) :- linked(X), not edge(X, Y2), edge(Y2, X).
)",
                                      &kb);
  if (!parsed.ok()) {
    std::cerr << "kb parse error: " << parsed << "\n";
    return 1;
  }
  BraidSystem braid(workload::MakeGraphDatabase(params), std::move(kb));

  // 1. Reachability from node 0, compiled strategy (fixed-point operator).
  ie::IeConfig compiled = braid.ie().config();
  compiled.strategy = ie::StrategyKind::kCompiled;
  braid.ie().set_config(compiled);
  auto reach = braid.Ask("reachable(0, Y)?");
  if (!reach.ok()) {
    std::cerr << "query failed: " << reach.status() << "\n";
    return 1;
  }
  std::cout << "nodes reachable from 0: " << reach->solutions.NumTuples()
            << " of " << params.nodes << "\n";

  // 2. Negation through the interpreted strategy: nodes that receive an
  //    edge but have no outgoing edge back to their predecessor.
  ie::IeConfig interp = braid.ie().config();
  interp.strategy = ie::StrategyKind::kInterpreted;
  braid.ie().set_config(interp);
  auto dead = braid.Ask("dead_end(X)?");
  if (dead.ok()) {
    std::cout << "dead-end nodes: "
              << rel::Distinct(dead->solutions).NumTuples() << "\n";
  } else {
    std::cout << "dead_end query failed: " << dead.status() << "\n";
  }

  // 3. Sorted answers via a co-existing alternative representation: the
  //    second sorted request reuses the first sort.
  auto q = caql::ParseCaql("edges(X, Y) :- edge(X, Y)");
  auto sorted1 = braid.cms().QuerySorted(q.value(), {"Y", "X"});
  auto sorted2 = braid.cms().QuerySorted(q.value(), {"Y", "X"});
  if (sorted1.ok() && sorted2.ok()) {
    std::cout << "edges sorted by destination (first 5 of "
              << sorted1->NumTuples() << "):\n"
              << sorted1->ToString(5) << "\n";
  }

  // 4. CMS-side aggregation: out-degree per node, top of the list.
  auto degree = braid.cms().Aggregate(
      caql::ParseCaql("deg(X, Y) :- edge(X, Y)").value(), {"X"},
      rel::AggFn::kCount, "Y");
  if (degree.ok()) {
    rel::Relation by_count = rel::Sort(*degree, {1});
    std::cout << "\nhighest out-degree nodes:\n";
    size_t shown = 0;
    for (size_t i = by_count.NumTuples(); i > 0 && shown < 3; --i, ++shown) {
      std::cout << "  node " << by_count.tuple(i - 1)[0].ToString()
                << ": " << by_count.tuple(i - 1)[1].ToString()
                << " outgoing edges\n";
    }
  }

  std::cout << "\nstatistics:\n  CMS: " << braid.cms().metrics().ToString()
            << "\n  remote: " << braid.remote().stats().ToString() << "\n";
  return 0;
}
